//===- core/Dedup.cpp - Subtree dedup & session-symmetry reduction --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "core/Dedup.h"

#include "support/Hash.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace txdpor;

namespace {

/// Two independently-seeded order-sensitive chains over one element
/// stream; finalized into a 128-bit fingerprint.
struct Mix128 {
  uint64_t A;
  uint64_t B;

  Mix128(uint64_t SeedA, uint64_t SeedB) : A(SeedA), B(SeedB) {}

  void add(uint64_t V) {
    A = hashCombine64(A, V);
    B = hashCombine64(B, V ^ 0x5bf0f5e383bd9a1bULL);
  }

  Fingerprint done() const { return {splitmix64(A), splitmix64(B)}; }
};

//===----------------------------------------------------------------------===//
// Structural session classes
//===----------------------------------------------------------------------===//

bool exprEq(const Expr::NodeRef &A, const Expr::NodeRef &B) {
  if (!A || !B)
    return !A && !B;
  if (A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ExprKind::Const:
    return A->constVal() == B->constVal();
  case ExprKind::Local:
    return A->localId() == B->localId();
  case ExprKind::Unary:
    return A->unaryOp() == B->unaryOp() && exprEq(A->lhs(), B->lhs());
  case ExprKind::Binary:
    return A->binaryOp() == B->binaryOp() && exprEq(A->lhs(), B->lhs()) &&
           exprEq(A->rhs(), B->rhs());
  }
  return false;
}

bool instrEq(const Instr &A, const Instr &B) {
  return A.Kind == B.Kind && A.Target == B.Target && A.Var == B.Var &&
         exprEq(A.Guard.Node, B.Guard.Node) && exprEq(A.Rhs.Node, B.Rhs.Node);
}

/// Structural equality of two sessions' code (names are metadata and do
/// not participate: renaming a session must not change its class).
bool sessionStructEq(const Program &P, uint32_t S1, uint32_t S2) {
  if (P.numTxns(S1) != P.numTxns(S2))
    return false;
  for (unsigned T = 0, E = P.numTxns(S1); T != E; ++T) {
    const std::vector<Instr> &A = P.txn({S1, T}).body();
    const std::vector<Instr> &B = P.txn({S2, T}).body();
    if (A.size() != B.size())
      return false;
    for (size_t I = 0, N = A.size(); I != N; ++I)
      if (!instrEq(A[I], B[I]))
        return false;
  }
  return true;
}

void mixExpr(Mix128 &M, const Expr::NodeRef &E) {
  if (!E) {
    M.add(0);
    return;
  }
  M.add(static_cast<uint64_t>(E->kind()) + 1);
  switch (E->kind()) {
  case ExprKind::Const:
    M.add(static_cast<uint64_t>(E->constVal()));
    break;
  case ExprKind::Local:
    M.add(E->localId());
    break;
  case ExprKind::Unary:
    M.add(static_cast<uint64_t>(E->unaryOp()));
    mixExpr(M, E->lhs());
    break;
  case ExprKind::Binary:
    M.add(static_cast<uint64_t>(E->binaryOp()));
    mixExpr(M, E->lhs());
    mixExpr(M, E->rhs());
    break;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// historyFingerprint
//===----------------------------------------------------------------------===//

Fingerprint txdpor::historyFingerprint(const History &H) {
  // Logs sorted by uid, exactly the rendering order of canonicalKey, so
  // key equality and fingerprint equality coincide (modulo collisions).
  std::vector<unsigned> Order(H.numTxns());
  std::iota(Order.begin(), Order.end(), 0u);
  std::sort(Order.begin(), Order.end(), [&](unsigned A, unsigned B) {
    return H.txn(A).uid() < H.txn(B).uid();
  });
  Mix128 M(0x8f1bbcdc5a827999ULL, 0xca62c1d6d76aa478ULL);
  M.add(H.numTxns());
  for (unsigned I : Order) {
    const TransactionLog &Log = H.txn(I);
    M.add(Log.uid().packed());
    M.add(Log.size());
    for (uint32_t P = 0, E = static_cast<uint32_t>(Log.size()); P != E; ++P) {
      const Event &Ev = Log.event(P);
      M.add(static_cast<uint64_t>(Ev.Kind));
      M.add(Ev.Var);
      M.add(static_cast<uint64_t>(Ev.Val));
      if (std::optional<TxnUid> W = Log.writerOf(P)) {
        M.add(1);
        M.add(W->packed());
      } else {
        M.add(0);
      }
    }
  }
  return M.done();
}

//===----------------------------------------------------------------------===//
// DedupTable
//===----------------------------------------------------------------------===//

DedupTable::DedupTable(const Program &Prog, const LevelAssignment &Levels,
                       DedupMode Mode)
    : Mode(Mode), NumSessions(Prog.numSessions()) {
  assert(Mode != DedupMode::Off && "a table for a disabled mode");

  // Partition sessions into structural classes: same base level, same
  // transaction count, structurally equal bodies. Class ids ascend with
  // first occurrence, so the layout is a pure function of the program —
  // identical across every item of one run.
  ClassOf.assign(NumSessions, 0);
  std::vector<uint32_t> Reps;
  for (uint32_t S = 0; S != NumSessions; ++S) {
    uint32_t Class = static_cast<uint32_t>(Reps.size());
    for (uint32_t C = 0; C != Reps.size(); ++C)
      if (Levels.levelFor(Reps[C]) == Levels.levelFor(S) &&
          sessionStructEq(Prog, Reps[C], S)) {
        Class = C;
        break;
      }
    if (Class == Reps.size())
      Reps.push_back(S);
    ClassOf[S] = Class;
  }

  // Salt: the program text plus the resolved assignment, so fingerprints
  // from different semantics can never alias (tables are per-run anyway;
  // this is defense in depth for serialized fingerprints in dumps).
  Mix128 M(0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL);
  M.add(static_cast<uint64_t>(Mode));
  M.add(NumSessions);
  for (uint32_t S = 0; S != NumSessions; ++S) {
    M.add(static_cast<uint64_t>(Levels.levelFor(S)));
    M.add(Prog.numTxns(S));
    for (unsigned T = 0, E = Prog.numTxns(S); T != E; ++T) {
      const std::vector<Instr> &Body = Prog.txn({S, T}).body();
      M.add(Body.size());
      for (const Instr &I : Body) {
        M.add(static_cast<uint64_t>(I.Kind));
        M.add(I.Target);
        M.add(I.Var);
        mixExpr(M, I.Guard.Node);
        mixExpr(M, I.Rhs.Node);
      }
    }
  }
  Fingerprint Salt = M.done();
  Salt0 = Salt.Lo;
  Salt1 = Salt.Hi;
}

Fingerprint DedupTable::itemFingerprint(const History &H,
                                        const CursorMap &Cursors) const {
  // Canonical session permutation. Exact mode keeps the identity; in
  // Symmetry mode sessions are renamed to their rank under a sort by
  // (structural class, refined digest, original id). The class blocks of
  // the sort are a pure function of the program, so the composed
  // difference between any two items' permutations stays *within*
  // classes — fingerprint equality therefore certifies equality modulo a
  // structural-class renaming, never across classes.
  std::vector<uint32_t> Pi(NumSessions);
  std::iota(Pi.begin(), Pi.end(), 0u);
  if (Mode == DedupMode::Symmetry && NumSessions > 1) {
    // Round 0: a per-session digest of everything π-invariant about the
    // session's part of the item — its class, its blocks' positions in
    // block order, indices, events, writers by (class, index), and its
    // cursors. Writers by class (not id) keep the digest invariant under
    // renaming of *other* sessions.
    std::vector<uint64_t> D0(NumSessions);
    for (uint32_t S = 0; S != NumSessions; ++S)
      D0[S] = hashCombine64(0x9159015a3070dd17ULL, ClassOf[S]);
    for (unsigned I = 0, N = H.numTxns(); I != N; ++I) {
      const TransactionLog &Log = H.txn(I);
      TxnUid U = Log.uid();
      if (U.isInit())
        continue;
      assert(U.Session < NumSessions && "history names an unknown session");
      uint64_t D = D0[U.Session];
      D = hashCombine64(D, I);
      D = hashCombine64(D, U.Index);
      D = hashCombine64(D, Log.size());
      for (uint32_t P = 0, E = static_cast<uint32_t>(Log.size()); P != E;
           ++P) {
        const Event &Ev = Log.event(P);
        D = hashCombine64(D, static_cast<uint64_t>(Ev.Kind));
        D = hashCombine64(D, Ev.Var);
        D = hashCombine64(D, static_cast<uint64_t>(Ev.Val));
        if (std::optional<TxnUid> W = Log.writerOf(P)) {
          D = hashCombine64(D, classOf(W->Session));
          D = hashCombine64(D, W->Index);
        }
      }
      D0[U.Session] = D;
    }
    for (const auto &Entry : Cursors) {
      TxnUid U{static_cast<uint32_t>(Entry.first >> 32),
               static_cast<uint32_t>(Entry.first)};
      if (U.isInit())
        continue;
      assert(U.Session < NumSessions && "cursor names an unknown session");
      uint64_t D = D0[U.Session];
      D = hashCombine64(D, U.Index);
      D = hashCombine64(D, Entry.second.NextInstr);
      D = hashCombine64(D, Entry.second.Finished ? 1 : 0);
      D = hashCombine64(D, Entry.second.Locals.size());
      for (Value V : Entry.second.Locals)
        D = hashCombine64(D, static_cast<uint64_t>(V));
      D0[U.Session] = D;
    }
    // Round 1: refine with the round-0 colors of each read's writer
    // session, so same-class sessions distinguished only through whom
    // they read from still sort apart.
    std::vector<uint64_t> D1 = D0;
    for (unsigned I = 0, N = H.numTxns(); I != N; ++I) {
      const TransactionLog &Log = H.txn(I);
      TxnUid U = Log.uid();
      if (U.isInit())
        continue;
      for (uint32_t P = 0, E = static_cast<uint32_t>(Log.size()); P != E; ++P)
        if (std::optional<TxnUid> W = Log.writerOf(P))
          if (!W->isInit())
            D1[U.Session] = hashCombine64(D1[U.Session], D0[W->Session]);
    }
    std::vector<uint32_t> Sorted(NumSessions);
    std::iota(Sorted.begin(), Sorted.end(), 0u);
    std::sort(Sorted.begin(), Sorted.end(), [&](uint32_t A, uint32_t B) {
      if (ClassOf[A] != ClassOf[B])
        return ClassOf[A] < ClassOf[B];
      if (D1[A] != D1[B])
        return D1[A] < D1[B];
      return A < B;
    });
    for (uint32_t Rank = 0; Rank != NumSessions; ++Rank)
      Pi[Sorted[Rank]] = Rank;
  }

  auto Renamed = [&](TxnUid U) -> uint64_t {
    if (U.isInit())
      return U.packed();
    assert(U.Session < NumSessions && "item names an unknown session");
    return (static_cast<uint64_t>(Pi[U.Session]) << 32) | U.Index;
  };

  // The item itself, in block order, under the canonical names. Depth and
  // ConstraintState are excluded: Depth is driver bookkeeping and the
  // constraint state is a pure function of the history and the levels.
  Mix128 M(Salt0, Salt1);
  M.add(H.numTxns());
  for (unsigned I = 0, N = H.numTxns(); I != N; ++I) {
    const TransactionLog &Log = H.txn(I);
    M.add(Renamed(Log.uid()));
    M.add(Log.size());
    for (uint32_t P = 0, E = static_cast<uint32_t>(Log.size()); P != E; ++P) {
      const Event &Ev = Log.event(P);
      M.add(static_cast<uint64_t>(Ev.Kind));
      M.add(Ev.Var);
      M.add(static_cast<uint64_t>(Ev.Val));
      if (std::optional<TxnUid> W = Log.writerOf(P)) {
        M.add(1);
        M.add(Renamed(*W));
      } else {
        M.add(0);
      }
    }
  }
  // Cursors re-sorted by renamed key so the canonical form has one
  // deterministic cursor order regardless of the original session names.
  std::vector<std::pair<uint64_t, const TxnCursor *>> Renum;
  Renum.reserve(Cursors.size());
  for (const auto &Entry : Cursors) {
    TxnUid U{static_cast<uint32_t>(Entry.first >> 32),
             static_cast<uint32_t>(Entry.first)};
    Renum.emplace_back(Renamed(U), &Entry.second);
  }
  std::sort(Renum.begin(), Renum.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });
  M.add(Renum.size());
  for (const auto &[Key, Cursor] : Renum) {
    M.add(Key);
    M.add(Cursor->NextInstr);
    M.add(Cursor->Finished ? 1 : 0);
    M.add(Cursor->Locals.size());
    for (Value V : Cursor->Locals)
      M.add(static_cast<uint64_t>(V));
  }
  return M.done();
}

bool DedupTable::insertIfNew(const Fingerprint &F) const {
  const Shard &Sh = Shards[F.Hi & (NumShards - 1)];
  std::lock_guard<std::mutex> Guard(Sh.M);
  return Sh.Set.insert(F).second;
}

uint64_t DedupTable::size() const {
  uint64_t Total = 0;
  for (const Shard &Sh : Shards) {
    std::lock_guard<std::mutex> Guard(Sh.M);
    Total += Sh.Set.size();
  }
  return Total;
}
