//===- core/ExplorerConfig.h - Exploration options and statistics ---------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration and statistics shared by the swapping-based explorer and
/// the baseline DFS. A configuration chooses one of the paper's algorithm
/// instances:
///
///   * explore-ce(I0)          — BaseLevel = I0, no FilterLevel (§5);
///   * explore-ce*(I0, I)      — BaseLevel = I0, FilterLevel = I (§6);
///   * explore-ce(assignment)  — BaseLevels pins sessions to their own
///     base levels (mixed-isolation semantics, arXiv 2505.18409);
///
/// plus ablation knobs that disable the individual §5.3 optimality
/// mechanisms (used by bench_ablation to quantify what each buys).
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_CORE_EXPLORERCONFIG_H
#define TXDPOR_CORE_EXPLORERCONFIG_H

#include "consistency/IsolationLevel.h"
#include "history/History.h"
#include "support/Deadline.h"

#include <cstdint>
#include <functional>
#include <optional>

namespace txdpor {

/// Subtree-deduplication mode (core/Dedup.h). Off by default so uniform
/// runs stay byte-identical to pre-dedup builds.
///
///   * Off      — every subtree is expanded (the historical behaviour);
///   * Exact    — memoize a fingerprint of each expanded WorkItem and skip
///     items whose fingerprint was already expanded. expandItem is a
///     deterministic function of the item, so identical items root
///     identical subtrees and skipping repeats preserves the output *set*
///     exactly (multiplicities may drop where the §5.3 ablations generate
///     duplicates);
///   * Symmetry — additionally canonicalize session ids modulo renaming
///     within structural session classes before fingerprinting, so
///     isomorphic subtrees of symmetric programs are explored once.
enum class DedupMode : uint8_t { Off, Exact, Symmetry };

/// Options of one exploration run.
struct ExplorerConfig {
  /// I0: the prefix-closed, causally-extensible level driving ValidWrites
  /// and the swap machinery. Must be one of true / RC / RA / CC (§5, §6).
  IsolationLevel BaseLevel = IsolationLevel::CausalConsistency;

  /// Per-session base levels. ValidWrites and the swap machinery judge
  /// every consistency question at the *reading session's* level, so a
  /// mixed assignment opens exactly the extra wr choices its weaker
  /// sessions admit. Every named level must be prefix-closed and causally
  /// extensible (true/RC/RA/CC, asserted like BaseLevel) — such mixes
  /// keep Theorem 5.1 (docs/ARCHITECTURE.md, "Per-session isolation
  /// levels").
  ///
  /// Resolution against the program (ExplorationEngine): an assignment
  /// with explicit entries here wins; otherwise a program-declared
  /// assignment (Program::levels) wins; otherwise every session runs at
  /// BaseLevel. A resolved assignment whose sessions all agree collapses
  /// to the classic single-level path, so uniform runs are bit-identical
  /// to pre-assignment builds.
  LevelAssignment BaseLevels;

  /// I: the level of the final Valid filter (§6). Unset means
  /// Valid(h) = true, i.e. plain explore-ce(BaseLevel).
  std::optional<IsolationLevel> FilterLevel;

  /// Wall-clock budget; expired explorations report TimedOut.
  Deadline TimeBudget;

  /// §5.3 ablations: disable the "already swapped" restriction
  /// (Fig. 13 mechanism) or the readLatest restriction (Fig. 12
  /// mechanism). Disabling either loses optimality (duplicate histories);
  /// the algorithm remains sound and complete.
  bool CheckSwapped = true;
  bool CheckReadLatest = true;

  /// Safety valve for ablations and huge programs: stop after this many
  /// end states (0 = unlimited).
  uint64_t MaxEndStates = 0;

  /// Debug hook: called with every ordered history the exploration
  /// visits (at explore() entry, i.e. including partial histories). Used
  /// by the test suite to assert the Appendix E invariants dynamically.
  std::function<void(const History &)> OnExplore;

  /// Use the iterative worklist implementation instead of recursion. The
  /// paper's JPF tool does the same "for performance reasons ... inputs
  /// to recursive calls are maintained as a collection of histories
  /// instead of relying on the call stack" (§7.1). Outputs and statistics
  /// are identical to the recursive implementation (asserted by the test
  /// suite); only the C++ stack usage differs.
  bool Iterative = false;

  /// Worker threads of the parallel driver (parallel/ParallelExplorer.h).
  /// 0 or 1 means sequential; the sequential Explorer ignores this. The
  /// output history set is identical for every value (the exploration tree
  /// is fixed; threads only partition its subtrees).
  unsigned Threads = 1;

  /// Frontier sizing for the parallel driver: the breadth-first split
  /// phase keeps expanding until at least SplitFactor × Threads
  /// independent subtrees are available for the workers. Larger values
  /// smooth out imbalanced subtrees at the cost of a longer sequential
  /// phase.
  unsigned SplitFactor = 4;

  /// Depth bound for the split phase (0 = unbounded): items at this depth
  /// or deeper are handed to the workers unsplit even if the frontier is
  /// still below target. Guards against degenerate, mostly-linear trees
  /// where breadth-first splitting would just replay the whole run.
  unsigned SplitDepth = 0;

  /// Order in which Next starts transactions when none is pending (§5.1's
  /// oracle order). Empty means the default: sessions ascending, within a
  /// session by position. A custom order must list every transaction of
  /// the program exactly once and be consistent with session order; the
  /// algorithm's output set is invariant under the choice (completeness
  /// is scheduler-independent), only the exploration order changes.
  std::vector<TxnUid> OracleOrderOverride;

  /// Subtree dedup: skip WorkItems whose (optionally session-canonicalized)
  /// fingerprint has already been expanded. The engine owns one
  /// internally-synchronized table per run, shared by all drivers
  /// (recursive, iterative, parallel). See core/Dedup.h.
  DedupMode Dedup = DedupMode::Off;

  /// Memo-table bound for the dedup table: 0 (the default) memoizes every
  /// fingerprint forever — byte-identical to pre-bound builds; a positive
  /// value caps the table at roughly that many entries with per-shard
  /// CLOCK eviction. Eviction trades skips for memory: an evicted subtree
  /// is re-explored (and re-skippable later), never wrongly skipped.
  uint64_t DedupMaxEntries = 0;

  /// Release-mode cross-check of the carried fingerprint: re-derive every
  /// probed fingerprint from scratch and count disagreements into
  /// ExplorerStats::DedupFpMismatches instead of skipping silently wrong.
  /// Debug builds always assert this; the flag lets the
  /// DifferentialOracle's DiffDedup legs verify it in optimized fuzzing
  /// runs too.
  bool DedupVerifyCarried = false;

  /// Returns the paper's name for this configuration, e.g. "CC",
  /// "CC + SER", "true + CC".
  std::string algorithmName() const;

  static ExplorerConfig exploreCE(IsolationLevel Base) {
    ExplorerConfig C;
    C.BaseLevel = Base;
    return C;
  }
  static ExplorerConfig exploreCEStar(IsolationLevel Base,
                                      IsolationLevel Filter) {
    ExplorerConfig C;
    C.BaseLevel = Base;
    C.FilterLevel = Filter;
    return C;
  }
  /// explore-ce with a per-session base assignment.
  static ExplorerConfig exploreCEMixed(LevelAssignment Levels) {
    ExplorerConfig C;
    C.BaseLevel = Levels.defaultLevel();
    C.BaseLevels = std::move(Levels);
    return C;
  }
};

/// Counters reported by every exploration (the paper reports time, memory
/// and end states; the rest diagnoses optimality properties in tests).
struct ExplorerStats {
  uint64_t ExploreCalls = 0;   ///< Recursive explore invocations.
  uint64_t EndStates = 0;      ///< Complete executions (before Valid).
  uint64_t Outputs = 0;        ///< Histories passing the Valid filter.
  uint64_t EventsAdded = 0;    ///< Events appended across all branches.
  uint64_t ReadBranches = 0;   ///< wr choices explored.
  uint64_t BlockedReads = 0;   ///< Reads with no valid write (must be 0
                               ///< for causally-extensible BaseLevel).
  uint64_t SwapsConsidered = 0;
  uint64_t SwapsApplied = 0;
  uint64_t ConsistencyChecks = 0;
  uint64_t MaxDepth = 0;
  /// Parallel-driver observability (zero for sequential runs): successful
  /// and failed steal sweeps (a failed sweep = one full pass over every
  /// sibling queue without finding work), idle parks (sleeps after the
  /// yield budget is spent), and the frontier size the split phase handed
  /// to the workers.
  uint64_t StealSuccesses = 0;
  uint64_t StealFailures = 0;
  uint64_t IdleParks = 0;
  uint64_t FrontierItems = 0;
  /// Subtree-dedup observability (zero when Dedup is Off): fingerprint
  /// probes performed and subtrees skipped as already explored.
  uint64_t DedupChecks = 0;
  uint64_t DedupSkips = 0;
  /// CLOCK victims evicted from a bounded dedup table (0 when unbounded).
  uint64_t DedupEvictions = 0;
  /// Carried-vs-scratch fingerprint disagreements seen under
  /// ExplorerConfig::DedupVerifyCarried (must stay 0; counted rather than
  /// asserted so optimized differential fuzzing can report them).
  uint64_t DedupFpMismatches = 0;
  bool TimedOut = false;
  bool HitEndStateCap = false;
  double ElapsedMillis = 0;
  uint64_t PeakRssKb = 0;

  /// Accumulates \p Other into this: counters add up, MaxDepth/PeakRssKb
  /// take the maximum, the flags OR. ElapsedMillis *adds* (aggregate work
  /// time); drivers that merge concurrent workers overwrite it with the
  /// wall-clock afterwards. The single aggregation routine shared by the
  /// parallel explorer and the bench harnesses.
  void merge(const ExplorerStats &Other);
};

/// Callback receiving every output history.
using HistoryVisitor = std::function<void(const History &)>;

} // namespace txdpor

#endif // TXDPOR_CORE_EXPLORERCONFIG_H
