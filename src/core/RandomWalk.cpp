//===- core/RandomWalk.cpp - Randomized testing baseline ------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "core/RandomWalk.h"

#include "semantics/Executor.h"
#include "support/Rng.h"

#include <unordered_set>

using namespace txdpor;

namespace {

/// One complete random execution; returns the final history.
History runOneWalk(const Program &Prog, const ConsistencyChecker &Checker,
                   Rng &R, uint64_t &EventsExecuted) {
  History H = History::makeInitial(Prog.numVars());
  CursorMap Cursors;
  std::vector<uint32_t> NextTxn(Prog.numSessions(), 0);

  while (true) {
    // If a transaction is pending, run its next event (the one-pending
    // discipline of the evaluation's baselines).
    std::optional<unsigned> Pending = H.pendingTxn();
    TxnUid Uid;
    if (Pending) {
      Uid = H.txn(*Pending).uid();
    } else {
      // Pick a random session with transactions left.
      std::vector<uint32_t> Candidates;
      for (uint32_t S = 0; S != Prog.numSessions(); ++S)
        if (NextTxn[S] < Prog.numTxns(S))
          Candidates.push_back(S);
      if (Candidates.empty())
        return H;
      uint32_t S = Candidates[R.nextBelow(Candidates.size())];
      Uid = {S, NextTxn[S]++};
      H.beginTxn(Uid);
      Cursors[Uid.packed()] = TxnCursor::fresh(Prog.txn(Uid));
      ++EventsExecuted;
      continue;
    }

    unsigned Idx = *H.indexOf(Uid);
    const Transaction &Code = Prog.txn(Uid);
    TxnCursor &Cur = Cursors[Uid.packed()];
    DbOp Op = advanceToDbOp(Code, Cur);
    ++EventsExecuted;

    switch (Op.Kind) {
    case DbOp::Kind::Read: {
      H.appendEvent(Idx, Event::makeRead(Op.Var));
      uint32_t Pos = static_cast<uint32_t>(H.txn(Idx).size()) - 1;
      if (H.txn(Idx).isExternalRead(Pos)) {
        // Random consistent writer, like MonkeyDB's random weak reads.
        std::vector<unsigned> Valid;
        for (unsigned W : H.committedWriters(Op.Var)) {
          H.setWriter(Idx, Pos, H.txn(W).uid());
          if (Checker.isConsistent(H))
            Valid.push_back(W);
        }
        assert(!Valid.empty() &&
               "causally-extensible levels always have a valid writer");
        unsigned W = Valid[R.nextBelow(Valid.size())];
        H.setWriter(Idx, Pos, H.txn(W).uid());
      }
      applyRead(Code, Cur, H.readValue(Idx, Pos));
      break;
    }
    case DbOp::Kind::Write:
      H.appendEvent(Idx, Event::makeWrite(Op.Var, Op.Val));
      applyWrite(Cur);
      break;
    case DbOp::Kind::Abort:
      H.appendEvent(Idx, Event::makeAbort());
      applyFinish(Cur);
      break;
    case DbOp::Kind::Commit:
      H.appendEvent(Idx, Event::makeCommit());
      applyFinish(Cur);
      break;
    }
  }
}

} // namespace

RandomWalkStats txdpor::randomWalkProgram(const Program &Prog,
                                          const RandomWalkConfig &Config,
                                          const HistoryVisitor &Visit) {
  assert(isPrefixClosedCausallyExtensible(Config.Level) &&
         "random walks need a causally-extensible level to never block");
  RandomWalkStats Stats;
  Stopwatch Timer;
  Rng R(Config.Seed);
  const ConsistencyChecker &Checker = checkerFor(Config.Level);
  std::unordered_set<std::string> Seen;

  for (uint64_t Walk = 0; Walk != Config.NumWalks; ++Walk) {
    if (Config.TimeBudget.expired()) {
      Stats.TimedOut = true;
      break;
    }
    History H = runOneWalk(Prog, Checker, R, Stats.EventsExecuted);
    ++Stats.Walks;
    if (Seen.insert(H.canonicalKey()).second) {
      ++Stats.DistinctHistories;
      if (Visit)
        Visit(H);
    }
  }
  Stats.ElapsedMillis = Timer.elapsedMillis();
  return Stats;
}
