//===- core/Swap.cpp - ComputeReorderings, Swap, Optimality ---------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "core/Swap.h"

#include "consistency/IncrementalChecker.h"
#include "trace/Counters.h"
#include "trace/Trace.h"

using namespace txdpor;

bool txdpor::oracleLess(TxnUid A, TxnUid B) {
  if (A == B)
    return false;
  if (A.isInit())
    return true;
  if (B.isInit())
    return false;
  return A.Session < B.Session ||
         (A.Session == B.Session && A.Index < B.Index);
}

OracleOrder OracleOrder::fromSequence(const std::vector<TxnUid> &Sequence) {
  OracleOrder Order;
  std::unordered_map<uint32_t, uint32_t> NextIndex;
  for (const TxnUid &Uid : Sequence) {
    assert(!Uid.isInit() && "the initial transaction is implicitly least");
    assert(NextIndex[Uid.Session] == Uid.Index &&
           "oracle order must be consistent with session order");
    ++NextIndex[Uid.Session];
    bool Inserted =
        Order.Rank.emplace(Uid.packed(),
                           static_cast<unsigned>(Order.Rank.size()))
            .second;
    assert(Inserted && "duplicate transaction in oracle order");
    (void)Inserted;
  }
  return Order;
}

std::vector<Reordering> txdpor::computeReorderings(const History &H) {
  std::vector<Reordering> Result;
  if (H.numTxns() == 0)
    return Result;
  unsigned TIdx = H.numTxns() - 1;
  const TransactionLog &Target = H.txn(TIdx);
  // Non-empty only when the last added event is a commit (§5.2). Events
  // are only ever appended to the last block, so this is equivalent to the
  // last block being committed.
  if (!Target.isCommitted() || Target.isInit())
    return Result;

  const Relation &Causal = H.causalRelation();
  for (unsigned I = 0; I != TIdx; ++I) {
    // (tr(r), t) must not be related by (so ∪ wr)*.
    if (Causal.get(I, TIdx))
      continue;
    const TransactionLog &Reader = H.txn(I);
    for (uint32_t P : Reader.externalReads()) {
      if (!Reader.writerOf(P))
        continue;
      if (!Target.writesVar(Reader.event(P).Var))
        continue;
      Result.push_back({I, P});
    }
  }
  return Result;
}

namespace {

/// Shared deletion shape of Swap and readLatest: keep everything before
/// the reader block whole, keep the reader's log truncated to \p KeepLen
/// events, and keep later blocks only when they are (so ∪ wr)*
/// predecessors of the target (which, being the last block, is kept).
/// The truncated reader stays at its original position.
History truncateKeepingCausalPast(const History &H, unsigned ReaderTxn,
                                  uint32_t KeepLen, unsigned TargetTxn) {
  const Relation &Causal = H.causalRelation();
  History Result;
  for (unsigned I = 0, E = H.numTxns(); I != E; ++I) {
    if (I == ReaderTxn) {
      if (KeepLen > 0)
        Result.appendLog(H.txn(I).truncated(KeepLen));
      continue;
    }
    // Kept-whole blocks share storage with H (copy-on-write): the swap
    // fan-out only ever pays for the one truncated reader log.
    if (I < ReaderTxn || I == TargetTxn || Causal.get(I, TargetTxn))
      Result.appendLogShared(H, I);
  }
  return Result;
}

} // namespace

History txdpor::applySwap(const History &H, const Reordering &R,
                          unsigned *FirstChangedBlock) {
  unsigned TIdx = H.numTxns() - 1;
  assert(R.ReaderTxn < TIdx && "reader must precede the target in <");
  assert(H.txn(TIdx).isCommitted() && "swap target must be committed");
  assert(H.txn(R.ReaderTxn).isExternalRead(R.ReadPos) &&
         "swap re-orders external reads only");
  assert(H.txn(TIdx).writesVar(H.txn(R.ReaderTxn).event(R.ReadPos).Var) &&
         "swap target must write the read variable");

  const Relation &Causal = H.causalRelation();
  assert(!Causal.get(R.ReaderTxn, TIdx) &&
         "reader and target must be causally unrelated");
  (void)Causal;

  // Build the kept prefix (reader excluded), then append the truncated
  // reader as the new last block with its wr dependency re-pointed to t.
  History Result =
      truncateKeepingCausalPast(H, R.ReaderTxn, /*KeepLen=*/0, TIdx);
  unsigned NewIdx = Result.appendLog(H.txn(R.ReaderTxn).truncated(R.ReadPos + 1));
  Result.setWriter(NewIdx, R.ReadPos, H.txn(TIdx).uid());
  Result.checkWellFormed();
  // Everything before the re-appended reader is kept byte-identical (and
  // storage-shared) from H; the truncated reader is the only block whose
  // log or read values changed — the resume point for incremental replay.
  if (FirstChangedBlock)
    *FirstChangedBlock = NewIdx;
  return Result;
}

bool txdpor::isSwappedRead(const History &H, unsigned ReaderTxn,
                           uint32_t ReadPos, const OracleOrder &Order) {
  const TransactionLog &Reader = H.txn(ReaderTxn);
  std::optional<TxnUid> Writer = Reader.writerOf(ReadPos);
  assert(Writer && "swapped-ness is defined for reads with a wr writer");
  TxnUid ReaderUid = Reader.uid();

  // (1) The writer was scheduled by Next after the read: it follows the
  // reader in oracle order (it always precedes the read in history order,
  // footnote 7).
  if (!Order.less(ReaderUid, *Writer))
    return false;

  unsigned WriterIdx = *H.indexOf(*Writer);
  assert(WriterIdx < ReaderTxn && "writer must precede its reader in <");

  // (2) No transaction before r in both orders is a causal successor of
  // the writer.
  const Relation &Causal = H.causalRelation();
  for (unsigned I = 0, E = H.numTxns(); I != E; ++I) {
    if (I >= ReaderTxn) // r < t' (or t' is the reader itself).
      continue;
    if (!Order.less(H.txn(I).uid(), ReaderUid))
      continue;
    if (Causal.get(WriterIdx, I))
      return false;
  }

  // (3) r is the po-first read of its transaction reading from the writer.
  for (uint32_t P = 0; P != ReadPos; ++P)
    if (std::optional<TxnUid> PW = Reader.writerOf(P))
      if (*PW == *Writer)
        return false;
  return true;
}

bool txdpor::readsLatest(const History &H, unsigned ReaderTxn,
                         uint32_t ReadPos, unsigned TargetTxn,
                         const LevelAssignment &Base,
                         PrefixStateCache *Cache) {
  TXDPOR_TRACE_SPAN(Check, ReadsLatest, ReaderTxn, ReadPos);
  trace::bump(trace::Counter::ReadsLatestChecks);
  const TransactionLog &Reader = H.txn(ReaderTxn);
  VarId X = Reader.event(ReadPos).Var;
  std::optional<TxnUid> CurrentWriter = Reader.writerOf(ReadPos);
  assert(CurrentWriter && "readLatest needs an assigned wr writer");

  // h' of the definition: delete r' itself and every later event whose
  // transaction is not a causal predecessor of t.
  History Trunc = truncateKeepingCausalPast(H, ReaderTxn, ReadPos, TargetTxn);
  std::optional<unsigned> NewReader = Trunc.indexOf(Reader.uid());
  assert(NewReader && "reader prefix (at least begin) must remain");

  // One incremental state for the truncation (its open transaction is the
  // truncated reader, pending mid-order); every candidate is then a pure
  // probe instead of a history copy plus a scratch consistency check.
  // With a prefix cache, even that one state is O(Δ): Trunc keeps
  // [0, ReaderTxn) byte-identical to H, so we copy the cached prefix
  // state and replay only the truncated reader and the kept causal past.
  ConstraintState State =
      Cache ? [&] {
        ConstraintState S = Cache->stateFor(ReaderTxn);
        S.replayBlocks(Trunc, ReaderTxn, Trunc.numTxns());
#ifndef NDEBUG
        assert(S.equivalentTo(ConstraintState(Trunc, Base)) &&
               "incremental truncation rebuild diverged from the bulk state");
#endif
        return S;
      }()
            : ConstraintState(Trunc, Base);
  assert(State.consistent() &&
         "truncations of a consistent history stay consistent (Thm. 3.2)");
  assert(State.hasOpenTxn() && State.openTxn() == *NewReader &&
         "the truncated reader must be the unique pending transaction");
  const Relation &CausalT = State.causal();

  // Scan candidates from the <-latest downwards; the first consistent
  // causal-past writer is the maximum of the candidate set.
  for (unsigned U = Trunc.numTxns(); U-- > 0;) {
    if (U == *NewReader || !Trunc.txn(U).writesVar(X))
      continue;
    if (!CausalT.get(U, *NewReader))
      continue;
    if (!State.readAdmits(U, X))
      continue;
    return Trunc.txn(U).uid() == *CurrentWriter;
  }
  // No consistent causal-past writer at all: r' cannot read latest.
  return false;
}

bool txdpor::optimalityRestrictionsHold(const History &H, const Reordering &R,
                                        const LevelAssignment &Base,
                                        bool CheckSwapped,
                                        bool CheckReadLatest,
                                        uint64_t *NumChecks,
                                        const OracleOrder &Order,
                                        PrefixStateCache *Cache) {
  unsigned TIdx = H.numTxns() - 1;
  if (!CheckSwapped && !CheckReadLatest)
    return true;

  auto readOk = [&](unsigned TxnIdx, uint32_t Pos) {
    if (CheckSwapped && isSwappedRead(H, TxnIdx, Pos, Order))
      return false;
    if (CheckReadLatest) {
      if (NumChecks)
        ++*NumChecks;
      if (!readsLatest(H, TxnIdx, Pos, TIdx, Base, Cache))
        return false;
    }
    return true;
  };

  // Every read in D ∪ {r} must be unswapped and read causally-latest:
  // r itself, the reader's later external reads, and all external reads of
  // transactions dropped by Swap.
  if (!readOk(R.ReaderTxn, R.ReadPos))
    return false;
  const TransactionLog &Reader = H.txn(R.ReaderTxn);
  for (uint32_t P = R.ReadPos + 1, E = static_cast<uint32_t>(Reader.size());
       P != E; ++P)
    if (Reader.writerOf(P) && !readOk(R.ReaderTxn, P))
      return false;

  const Relation &Causal = H.causalRelation();
  for (unsigned I = R.ReaderTxn + 1; I != TIdx; ++I) {
    if (Causal.get(I, TIdx)) // Kept whole by Swap; not in D.
      continue;
    for (uint32_t P : H.txn(I).externalReads())
      if (H.txn(I).writerOf(P) && !readOk(I, P))
        return false;
  }
  return true;
}

bool txdpor::optimalityHolds(const History &H, const Reordering &R,
                             const LevelAssignment &Base, bool CheckSwapped,
                             bool CheckReadLatest, uint64_t *NumChecks,
                             const OracleOrder &Order) {
  // The re-ordered history must satisfy the base assignment.
  History Swapped = applySwap(H, R);
  if (NumChecks)
    ++*NumChecks;
  if (!ConstraintState(Swapped, Base).consistent())
    return false;
  return optimalityRestrictionsHold(H, R, Base, CheckSwapped,
                                    CheckReadLatest, NumChecks, Order);
}
