//===- parallel/ParallelExplorer.h - Work-sharded exploration driver ------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel exploration driver. Every worklist entry of the iterative
/// formulation (§7.1) roots an *independent* subtree — expanding an item
/// reads only the item and the immutable program/engine — so the
/// exploration forest can be partitioned across threads without any
/// algorithmic change:
///
///   1. **Split.** Run the engine breadth-first from the root until the
///      frontier holds at least SplitFactor × Threads items (or the tree
///      or SplitDepth is exhausted). This phase is sequential and visits
///      each expanded node exactly once, like any other driver.
///   2. **Shard.** Deal the frontier round-robin onto one work-stealing
///      deque per worker (parallel/WorkQueue.h).
///   3. **Expand.** Each worker runs the sequential depth-first expansion
///      on its deque — owner-LIFO, thief-FIFO — with thread-local
///      ExplorerStats, a thread-local deadline, and a mutex-guarded
///      wrapper around the user visitor.
///   4. **Merge.** Per-worker statistics fold into the split-phase stats
///      via ExplorerStats::merge; ElapsedMillis is the wall clock.
///
/// Determinism: the exploration tree is a pure function of (program,
/// config), so for any thread count the union of visited nodes — and
/// hence the *set* of output histories and every aggregate counter except
/// ElapsedMillis/PeakRssKb — is identical to the sequential Explorer
/// (asserted by tests/parallel_explorer_test.cpp). Only the *order* in
/// which the visitor observes histories varies. Under a TimeBudget or
/// MaxEndStates cap the run is cut short cooperatively and which subset
/// was visited becomes schedule-dependent, exactly as wall-clock timeouts
/// already are sequentially.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_PARALLEL_PARALLELEXPLORER_H
#define TXDPOR_PARALLEL_PARALLELEXPLORER_H

#include "core/Engine.h"
#include "core/ExplorerConfig.h"
#include "program/Program.h"

namespace txdpor {

/// One parallel exploration run over a program. Construct, then call
/// run() once. With Config.Threads <= 1 this is exactly the sequential
/// iterative explorer.
class ParallelExplorer {
public:
  ParallelExplorer(const Program &Prog, ExplorerConfig Config);

  /// Explores the program; \p Visit receives every output history (after
  /// the Valid filter), serialized by an internal mutex — it may be
  /// invoked from any worker thread, but never concurrently. Returns the
  /// merged statistics.
  ExplorerStats run(const HistoryVisitor &Visit = {});

private:
  ExplorationEngine Engine;
};

/// Convenience entry point mirroring exploreProgram(): runs a parallel
/// exploration (Config.Threads workers) and returns its merged stats.
ExplorerStats exploreProgramParallel(const Program &Prog,
                                     ExplorerConfig Config,
                                     const HistoryVisitor &Visit = {});

} // namespace txdpor

#endif // TXDPOR_PARALLEL_PARALLELEXPLORER_H
