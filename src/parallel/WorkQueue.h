//===- parallel/WorkQueue.h - Work-stealing deques for exploration --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scheduling substrate of the parallel explorer: one WorkQueue per
/// worker, owner-LIFO / thief-FIFO in the classic work-stealing style.
///
///   * The owner pushes and pops at the bottom, so its local walk stays
///     depth-first — the polynomial-space guarantee of the sequential
///     explorer (Thm. 5.1) then holds per worker.
///   * Thieves steal from the top, i.e. the *shallowest* item, which roots
///     the largest remaining subtree — stolen work is coarse, keeping
///     steal traffic rare.
///
/// Exploration items are hundreds of bytes (a history plus cursor maps)
/// and expanding one costs consistency checks that dwarf a lock, so a
/// mutex per deque is the right tradeoff — a lock-free Chase-Lev deque
/// would optimise the part that is not hot. The shared Pending counter
/// provides termination detection: it counts items that are enqueued or
/// being expanded, so it reaches zero exactly when the forest is done.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_PARALLEL_WORKQUEUE_H
#define TXDPOR_PARALLEL_WORKQUEUE_H

#include "core/Engine.h"

#include <deque>
#include <mutex>

namespace txdpor {

/// A mutex-guarded work-stealing deque of exploration items.
class WorkQueue {
public:
  /// Bottom push (owner side).
  void push(WorkItem Item) {
    std::lock_guard<std::mutex> Lock(Mu);
    Items.push_back(std::move(Item));
  }

  /// Bottom pop (owner side): the most recently pushed item, keeping the
  /// owner's walk depth-first.
  bool tryPopBottom(WorkItem &Out) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Items.empty())
      return false;
    Out = std::move(Items.back());
    Items.pop_back();
    return true;
  }

  /// Top pop (thief side): the oldest — shallowest — item, rooting the
  /// largest remaining subtree.
  bool trySteal(WorkItem &Out) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Items.empty())
      return false;
    Out = std::move(Items.front());
    Items.pop_front();
    return true;
  }

  size_t size() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Items.size();
  }

private:
  mutable std::mutex Mu;
  std::deque<WorkItem> Items;
};

} // namespace txdpor

#endif // TXDPOR_PARALLEL_WORKQUEUE_H
