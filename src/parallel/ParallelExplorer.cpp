//===- parallel/ParallelExplorer.cpp - Work-sharded exploration driver ----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "parallel/ParallelExplorer.h"

#include "parallel/WorkQueue.h"
#include "support/MemoryProbe.h"
#include "trace/Counters.h"
#include "trace/Trace.h"

#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

using namespace txdpor;

ParallelExplorer::ParallelExplorer(const Program &Prog,
                                   ExplorerConfig Config)
    : Engine(Prog, std::move(Config)) {}

ExplorerStats txdpor::exploreProgramParallel(const Program &Prog,
                                             ExplorerConfig Config,
                                             const HistoryVisitor &Visit) {
  ParallelExplorer E(Prog, std::move(Config));
  return E.run(Visit);
}

ExplorerStats ParallelExplorer::run(const HistoryVisitor &VisitFn) {
  const ExplorerConfig &Config = Engine.config();
  const unsigned NumThreads = Config.Threads > 1 ? Config.Threads : 1;

  Stopwatch Timer;

  // Cross-worker control. The end-state budget is global (the cap bounds
  // the whole run, not each worker), so it routes through a shared counter
  // even during the single-threaded split phase.
  std::atomic<bool> SharedStop{false};
  std::atomic<uint64_t> SharedEndStates{0};

  // The user visitor and debug hook may be invoked from any worker; a
  // single mutex serializes them (histories stream out as they are found,
  // in a schedule-dependent order but with deterministic content).
  std::mutex HookMu;
  HistoryVisitor GuardedVisit;
  if (VisitFn)
    GuardedVisit = [&HookMu, &VisitFn](const History &H) {
      std::lock_guard<std::mutex> Lock(HookMu);
      VisitFn(H);
    };
  std::function<void(const History &)> GuardedOnExplore;
  if (Config.OnExplore)
    GuardedOnExplore = [&HookMu, &Config](const History &H) {
      std::lock_guard<std::mutex> Lock(HookMu);
      Config.OnExplore(H);
    };

  auto makeSink = [&]() {
    ExplorationSink S;
    S.Visit = GuardedVisit;
    S.OnExplore = GuardedOnExplore;
    S.TimeBudget = Config.TimeBudget; // Private copy per sink (poll state).
    S.SharedStop = &SharedStop;
    S.SharedEndStates = Config.MaxEndStates ? &SharedEndStates : nullptr;
    return S;
  };

  ExplorationSink MainSink = makeSink();

  if (NumThreads == 1) {
    drainDepthFirst(Engine, Engine.initialItem(), MainSink);
    MainSink.Stats.ElapsedMillis = Timer.elapsedMillis();
    MainSink.Stats.PeakRssKb = peakRssKb();
    MainSink.Stats.DedupEvictions = Engine.dedupEvictions();
    return MainSink.Stats;
  }

  //===--------------------------------------------------------------------===
  // Phase 1 — split: breadth-first expansion until the frontier holds
  // enough independent subtrees to feed every worker.
  //===--------------------------------------------------------------------===

  const size_t Target =
      static_cast<size_t>(Config.SplitFactor ? Config.SplitFactor : 1) *
      NumThreads;
  TXDPOR_TRACE_SPAN_NAMED(SplitSpan, Parallel, SplitPhase, NumThreads);
  std::deque<WorkItem> Frontier;
  Frontier.push_back(Engine.initialItem());
  std::vector<WorkItem> Ready; // Depth-capped items, excluded from splitting.
  std::vector<WorkItem> Children;
  while (!Frontier.empty() && Frontier.size() + Ready.size() < Target) {
    if (Engine.shouldStop(MainSink))
      break;
    WorkItem Item = std::move(Frontier.front());
    Frontier.pop_front();
    if (Config.SplitDepth && Item.Depth >= Config.SplitDepth) {
      Ready.push_back(std::move(Item));
      continue;
    }
    Children.clear();
    Engine.expandItem(std::move(Item), Children, MainSink);
    for (WorkItem &Child : Children)
      Frontier.push_back(std::move(Child));
  }
  for (WorkItem &Item : Frontier)
    Ready.push_back(std::move(Item));
  SplitSpan.setArgs(Ready.size(), NumThreads);
  SplitSpan.end();
  MainSink.Stats.FrontierItems = Ready.size();

  //===--------------------------------------------------------------------===
  // Phase 2 — shard: deal the frontier round-robin onto per-worker deques.
  //===--------------------------------------------------------------------===

  std::vector<std::unique_ptr<WorkQueue>> Queues;
  Queues.reserve(NumThreads);
  for (unsigned T = 0; T != NumThreads; ++T)
    Queues.push_back(std::make_unique<WorkQueue>());
  for (size_t I = 0; I != Ready.size(); ++I)
    Queues[I % NumThreads]->push(std::move(Ready[I]));

  // Items enqueued or mid-expansion; zero means the forest is exhausted.
  std::atomic<size_t> Pending{Ready.size()};

  //===--------------------------------------------------------------------===
  // Phase 3 — expand: depth-first workers, owner-LIFO / thief-FIFO.
  //===--------------------------------------------------------------------===

  std::vector<ExplorerStats> WorkerStats(NumThreads);
  auto Worker = [&](unsigned Me) {
    trace::setThreadName("worker-" + std::to_string(Me));
    TXDPOR_TRACE_SPAN(Parallel, Worker, Me);
    ExplorationSink S = makeSink();
    WorkQueue &Own = *Queues[Me];
    std::vector<WorkItem> Kids;
    WorkItem Item;
    unsigned IdleRounds = 0;
    for (;;) {
      if (Engine.shouldStop(S))
        break;
      bool Got = Own.tryPopBottom(Item);
      bool Stolen = false;
      for (unsigned I = 1; I != NumThreads && !Got; ++I)
        Got = Stolen = Queues[(Me + I) % NumThreads]->trySteal(Item);
      if (Stolen) {
        ++S.Stats.StealSuccesses;
        TXDPOR_TRACE_INSTANT(Parallel, Steal, Me);
      }
      if (!Got) {
        ++S.Stats.StealFailures;
        if (Pending.load(std::memory_order_acquire) == 0)
          break;
        // Yield through short droughts (steal latency matters there), but
        // back off to sleeping once a long imbalanced tail is likely, so
        // idle workers stop burning cores while one drains a linear
        // subtree.
        if (++IdleRounds < 64) {
          std::this_thread::yield();
        } else {
          ++S.Stats.IdleParks;
          TXDPOR_TRACE_SPAN(Parallel, Idle, Me);
          std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
        continue;
      }
      IdleRounds = 0;
      TXDPOR_TRACE_COUNTER(Parallel, Pending,
                           Pending.load(std::memory_order_relaxed));
      Kids.clear();
      Engine.expandItem(std::move(Item), Kids, S);
      if (!Kids.empty()) {
        Pending.fetch_add(Kids.size(), std::memory_order_relaxed);
        // Reverse push so the owner pops children in recursive visit
        // order, exactly like the sequential explicit-stack walk.
        for (size_t I = Kids.size(); I-- > 0;)
          Own.push(std::move(Kids[I]));
      }
      Pending.fetch_sub(1, std::memory_order_release);
    }
    trace::bump(trace::Counter::StealSuccesses, S.Stats.StealSuccesses);
    trace::bump(trace::Counter::StealFailures, S.Stats.StealFailures);
    trace::bump(trace::Counter::IdleParks, S.Stats.IdleParks);
    WorkerStats[Me] = S.Stats;
  };

  std::vector<std::thread> Pool;
  Pool.reserve(NumThreads);
  for (unsigned T = 0; T != NumThreads; ++T)
    Pool.emplace_back(Worker, T);
  for (std::thread &Th : Pool)
    Th.join();

  //===--------------------------------------------------------------------===
  // Phase 4 — merge.
  //===--------------------------------------------------------------------===

  ExplorerStats Total = MainSink.Stats;
  for (const ExplorerStats &S : WorkerStats)
    Total.merge(S);
  Total.ElapsedMillis = Timer.elapsedMillis();
  Total.PeakRssKb = peakRssKb();
  Total.DedupEvictions = Engine.dedupEvictions();
  return Total;
}
