//===- semantics/Executor.h - Operational semantics (Appendix B) ----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small-step semantics of Appendix B, restructured for the explorer:
/// local instructions (assignments, guard evaluation — the rules /local,
/// /if-true, /if-false) are deterministic given the local valuation, so a
/// transaction's execution state is fully captured by a cursor
/// (instruction index + local valuation). advanceToDbOp() runs local steps
/// until the next database access, exactly like the paper's Next "executes
/// all local instructions until the next database instruction" (§4).
///
/// The same machinery deterministically *replays* a transaction log
/// against its code (read values resolved through the history's wr
/// relation), which is how the explorer reconstructs execution states
/// after Swap re-orders a history (§5.2), and how assertions observe final
/// local states.
///
/// **Incremental replay.** Replay is a pure function of a transaction's
/// log and its read values, so a cursor stays valid across any history
/// surgery that leaves both untouched. replayCursorsFrom() exploits this:
/// given the cursor snapshot of a parent history and the first block index
/// Swap actually changed, it re-executes only the changed suffix and reuses
/// every other cursor verbatim — turning the O(program) full replay after
/// each swap into O(changed tail).
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_SEMANTICS_EXECUTOR_H
#define TXDPOR_SEMANTICS_EXECUTOR_H

#include "history/History.h"
#include "program/Program.h"

#include <algorithm>
#include <unordered_map>

namespace txdpor {

/// The next database operation a transaction will perform.
struct DbOp {
  enum class Kind : uint8_t { Read, Write, Commit, Abort } Kind;
  VarId Var = 0;      ///< Read / Write.
  Value Val = 0;      ///< Write: the evaluated value.
  LocalId Target = 0; ///< Read: destination local.
};

/// Execution state of one transaction: position in the body plus the
/// valuation of its (transaction-scoped) locals, all initially 0.
struct TxnCursor {
  uint32_t NextInstr = 0;
  std::vector<Value> Locals;
  bool Finished = false;

  static TxnCursor fresh(const Transaction &Code) {
    TxnCursor C;
    C.Locals.assign(Code.numLocals(), 0);
    return C;
  }

  /// Structural equality; used by the incremental-replay equivalence
  /// assertions and tests.
  bool operator==(const TxnCursor &O) const {
    return NextInstr == O.NextInstr && Finished == O.Finished &&
           Locals == O.Locals;
  }
  bool operator!=(const TxnCursor &O) const { return !(*this == O); }
};

/// Cursor storage for all started transactions, keyed by packed TxnUid.
///
/// A flat small-map: a key-sorted vector with binary search. The explorer
/// copies the whole map on every read branch of the ValidWrites loop, and
/// the handful of live transactions (at most sessions × txns, typically
/// under twenty) makes one contiguous allocation both faster to copy and
/// smaller than the previous std::unordered_map's bucket forest (ROADMAP
/// PR-2 follow-up). Iteration order is ascending by key, i.e.
/// deterministic — unlike the unordered_map it replaces.
class CursorMap {
public:
  using value_type = std::pair<uint64_t, TxnCursor>;
  using const_iterator = std::vector<value_type>::const_iterator;

  CursorMap() = default;

  /// The cursor of \p Key, default-constructed and inserted if absent.
  TxnCursor &operator[](uint64_t Key) {
    auto It = lower(Key);
    if (It == Entries.end() || It->first != Key)
      It = Entries.insert(It, {Key, TxnCursor()});
    return It->second;
  }

  /// The cursor of \p Key, which must be present.
  const TxnCursor &at(uint64_t Key) const {
    auto It = lower(Key);
    assert(It != Entries.end() && It->first == Key &&
           "no cursor for this transaction");
    return It->second;
  }

  const_iterator find(uint64_t Key) const {
    auto It = lower(Key);
    return It != Entries.end() && It->first == Key
               ? const_iterator(It)
               : Entries.end();
  }
  size_t count(uint64_t Key) const { return find(Key) != end() ? 1 : 0; }

  /// Inserts (\p Key, \p Cur) if \p Key is absent (map::emplace semantics).
  void emplace(uint64_t Key, TxnCursor Cur) {
    auto It = lower(Key);
    if (It == Entries.end() || It->first != Key)
      Entries.insert(It, {Key, std::move(Cur)});
  }

  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }
  const_iterator begin() const { return Entries.begin(); }
  const_iterator end() const { return Entries.end(); }

private:
  std::vector<value_type>::iterator lower(uint64_t Key) {
    return std::lower_bound(
        Entries.begin(), Entries.end(), Key,
        [](const value_type &E, uint64_t K) { return E.first < K; });
  }
  std::vector<value_type>::const_iterator lower(uint64_t Key) const {
    return std::lower_bound(
        Entries.begin(), Entries.end(), Key,
        [](const value_type &E, uint64_t K) { return E.first < K; });
  }

  std::vector<value_type> Entries; ///< Ascending by key.
};

/// Runs local steps of \p Code from \p Cur until the next database
/// operation (or the implicit commit at the end of the body) and returns
/// it without consuming it. Guards of skipped instructions are evaluated
/// against the current locals; \p Cur advances past local instructions.
DbOp advanceToDbOp(const Transaction &Code, TxnCursor &Cur);

/// Consumes a pending Read operation: stores \p V into its target local.
void applyRead(const Transaction &Code, TxnCursor &Cur, Value V);

/// Consumes a pending Write operation.
void applyWrite(TxnCursor &Cur);

/// Consumes a pending Commit or Abort: marks the cursor finished.
void applyFinish(TxnCursor &Cur);

/// Rebuilds the cursor of transaction \p TxnIdx of \p H by replaying its
/// log against its code. Read values are resolved through H's wr relation.
/// Asserts, in debug builds, that the log is feasible: replay must emit
/// exactly the logged events (same kinds, variables and written values).
TxnCursor replayCursor(const Program &P, const History &H, unsigned TxnIdx);

/// Rebuilds cursors for every non-init transaction of \p H.
CursorMap replayAllCursors(const Program &P, const History &H);

/// Incremental variant of replayAllCursors: rebuilds cursors for \p H
/// reusing the snapshot \p Prev wherever the history is unchanged.
///
/// \p FirstDirtyTxn is the earliest block index of \p H whose log (or
/// whose read values) may differ from the history \p Prev was computed
/// against — applySwap() reports it. For every non-init transaction at an
/// index below it the cursor is *copied* from \p Prev (keyed by uid, so
/// blocks that merely shifted position reuse too); transactions at or
/// beyond it are replayed from scratch.
///
/// Contract (the caller guarantees, Swap establishes — §5.2): each reused
/// transaction's log is byte-identical to the one \p Prev saw, and all its
/// wr writers are themselves kept unchanged, so its read values — and
/// hence its replayed cursor — cannot differ. Debug builds assert
/// equivalence with a full replay.
CursorMap replayCursorsFrom(const Program &P, const History &H,
                            const CursorMap &Prev, unsigned FirstDirtyTxn);

/// Final local valuation of every transaction of a complete history, used
/// by assertion checking. Keyed by packed TxnUid.
struct FinalStates {
  const Program *Prog = nullptr;
  std::unordered_map<uint64_t, std::vector<Value>> Locals;

  /// Value of local \p Name in transaction (\p Session, \p Index).
  /// Asserts that the transaction ran and declares the local.
  Value local(uint32_t Session, uint32_t Index, const std::string &Name) const;

  /// True if the transaction (\p Session, \p Index) committed is recorded.
  bool ran(uint32_t Session, uint32_t Index) const {
    return Locals.count(TxnUid{Session, Index}.packed()) != 0;
  }
};

/// Computes final states by replaying every transaction of \p H.
FinalStates computeFinalStates(const Program &P, const History &H);

} // namespace txdpor

#endif // TXDPOR_SEMANTICS_EXECUTOR_H
