//===- semantics/Executor.cpp - Operational semantics ---------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "semantics/Executor.h"

#include "trace/Trace.h"

using namespace txdpor;

DbOp txdpor::advanceToDbOp(const Transaction &Code, TxnCursor &Cur) {
  assert(!Cur.Finished && "advancing a finished transaction");
  const std::vector<Instr> &Body = Code.body();
  while (Cur.NextInstr < Body.size()) {
    const Instr &I = Body[Cur.NextInstr];
    // Rules /if-true and /if-false: a false guard skips the instruction.
    if (I.Guard.valid() && I.Guard.evaluate(Cur.Locals) == 0) {
      ++Cur.NextInstr;
      continue;
    }
    switch (I.Kind) {
    case InstrKind::Assign: // Rule /local.
      assert(I.Target < Cur.Locals.size() && "assign target out of range");
      Cur.Locals[I.Target] = I.Rhs.evaluate(Cur.Locals);
      ++Cur.NextInstr;
      continue;
    case InstrKind::Read:
      return {DbOp::Kind::Read, I.Var, 0, I.Target};
    case InstrKind::Write:
      return {DbOp::Kind::Write, I.Var, I.Rhs.evaluate(Cur.Locals), 0};
    case InstrKind::Abort:
      return {DbOp::Kind::Abort, 0, 0, 0};
    }
  }
  return {DbOp::Kind::Commit, 0, 0, 0};
}

void txdpor::applyRead(const Transaction &Code, TxnCursor &Cur, Value V) {
  const Instr &I = Code.body()[Cur.NextInstr];
  assert(I.Kind == InstrKind::Read && "cursor is not at a read");
  assert(I.Target < Cur.Locals.size() && "read target out of range");
  Cur.Locals[I.Target] = V;
  ++Cur.NextInstr;
}

void txdpor::applyWrite(TxnCursor &Cur) { ++Cur.NextInstr; }

void txdpor::applyFinish(TxnCursor &Cur) { Cur.Finished = true; }

TxnCursor txdpor::replayCursor(const Program &P, const History &H,
                               unsigned TxnIdx) {
  const TransactionLog &Log = H.txn(TxnIdx);
  assert(!Log.isInit() && "the initial transaction has no code to replay");
  const Transaction &Code = P.txn(Log.uid());
  TxnCursor Cur = TxnCursor::fresh(Code);

  // events()[0] is begin; replay the rest.
  for (uint32_t Pos = 1, E = static_cast<uint32_t>(Log.size()); Pos != E;
       ++Pos) {
    const Event &Ev = Log.event(Pos);
    DbOp Op = advanceToDbOp(Code, Cur);
    switch (Ev.Kind) {
    case EventKind::Read:
      assert(Op.Kind == DbOp::Kind::Read && Op.Var == Ev.Var &&
             "log/replay mismatch on read");
      applyRead(Code, Cur, H.readValue(TxnIdx, Pos));
      break;
    case EventKind::Write:
      assert(Op.Kind == DbOp::Kind::Write && Op.Var == Ev.Var &&
             Op.Val == Ev.Val && "log/replay mismatch on write");
      applyWrite(Cur);
      break;
    case EventKind::Commit:
      assert(Op.Kind == DbOp::Kind::Commit && "log/replay mismatch on commit");
      applyFinish(Cur);
      break;
    case EventKind::Abort:
      assert(Op.Kind == DbOp::Kind::Abort && "log/replay mismatch on abort");
      applyFinish(Cur);
      break;
    case EventKind::Begin:
      assert(false && "begin must be the first event only");
      break;
    }
    (void)Op;
  }
  return Cur;
}

CursorMap txdpor::replayAllCursors(const Program &P, const History &H) {
  return replayCursorsFrom(P, H, CursorMap(), /*FirstDirtyTxn=*/0);
}

CursorMap txdpor::replayCursorsFrom(const Program &P, const History &H,
                                    const CursorMap &Prev,
                                    unsigned FirstDirtyTxn) {
  TXDPOR_TRACE_SPAN(Replay, ReplayCursors, FirstDirtyTxn, H.numTxns());
  CursorMap Cursors;
  for (unsigned I = 0, E = H.numTxns(); I != E; ++I) {
    if (H.txn(I).isInit())
      continue;
    uint64_t Key = H.txn(I).uid().packed();
    if (I < FirstDirtyTxn) {
      auto It = Prev.find(Key);
      assert(It != Prev.end() &&
             "cursor snapshot missing a transaction below FirstDirtyTxn");
      assert(It->second == replayCursor(P, H, I) &&
             "reused cursor diverges from full replay (dirty transaction "
             "below FirstDirtyTxn?)");
      Cursors.emplace(Key, It->second);
      continue;
    }
    Cursors.emplace(Key, replayCursor(P, H, I));
  }
  return Cursors;
}

Value FinalStates::local(uint32_t Session, uint32_t Index,
                         const std::string &Name) const {
  assert(Prog && "FinalStates not initialized");
  TxnUid Uid{Session, Index};
  auto It = Locals.find(Uid.packed());
  assert(It != Locals.end() && "transaction did not run");
  std::optional<LocalId> L = Prog->txn(Uid).findLocal(Name);
  assert(L && "unknown local variable");
  assert(*L < It->second.size() && "local id out of range");
  return It->second[*L];
}

FinalStates txdpor::computeFinalStates(const Program &P, const History &H) {
  FinalStates States;
  States.Prog = &P;
  for (unsigned I = 0, E = H.numTxns(); I != E; ++I) {
    if (H.txn(I).isInit())
      continue;
    States.Locals.emplace(H.txn(I).uid().packed(),
                          replayCursor(P, H, I).Locals);
  }
  return States;
}
