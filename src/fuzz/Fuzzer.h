//===- fuzz/Fuzzer.h - The differential fuzzing driver --------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end fuzz loop behind `txdpor-cli fuzz`: generate a seeded
/// case (a random program run through every explorer, or a raw random
/// history run through every checker), ask the DifferentialOracle for
/// disagreements, delta-debug any disagreement down to a minimal repro
/// (fuzz/Minimizer.h) and emit it as a self-contained litmus file
/// (fuzz/Repro.h).
///
/// Determinism: case K draws from its own substream
/// Rng(Rng::deriveSeed(Seed, K)), so a single `--seed S --iters N` pair
/// pins the whole run bit-for-bit — same cases, same disagreements, same
/// repro files — and any failing case replays in isolation from the
/// (seed, case) pair printed in the log.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_FUZZ_FUZZER_H
#define TXDPOR_FUZZ_FUZZER_H

#include "fuzz/DifferentialOracle.h"
#include "fuzz/ProgramGenerator.h"
#include "fuzz/Repro.h"

#include <iosfwd>
#include <string>
#include <vector>

namespace txdpor {
namespace fuzz {

/// Options of one fuzz run (the CLI flags map onto these 1:1).
struct FuzzOptions {
  uint64_t Seed = 1;
  uint64_t Iterations = 1000;
  /// Wall-clock cutoff in milliseconds; 0 = run all iterations.
  int64_t TimeBudgetMs = 0;
  /// Program shape preset (programShapeByName). A non-empty name wins
  /// over Shape; clear it ("") to fuzz an explicit custom Shape.
  std::string ShapeName = "default";
  /// Explicit shape; consulted only when ShapeName is empty.
  ProgramShape Shape;
  /// Share (percent) of cases that are raw random histories exercising
  /// only the checker/witness cross-checks; the rest are programs run
  /// through the full explorer diff.
  unsigned HistoryCasePercent = 50;
  /// Pins every program case to this per-session isolation-level mix
  /// (CLI `fuzz --levels`), overriding any shape-sampled mix. The program
  /// draw itself is untouched, so a run differs from its unpinned twin
  /// only in the oracle's level sweep and mixed-semantics legs.
  std::vector<IsolationLevel> ForcedSessionLevels;
  /// Delta-debug disagreements to a minimal repro before reporting.
  bool Minimize = true;
  /// Directory for repro litmus files; empty = do not write files.
  std::string OutDir;
  /// Stop after this many disagreeing cases (0 = never stop early).
  uint64_t MaxDisagreements = 16;
  /// Test-only checker weakening (see DifferentialOracle.h).
  CheckerMutation Mutation = CheckerMutation::None;
  /// Oracle knobs (Mutation above is copied over it).
  OracleConfig Oracle;
  /// Progress/disagreement log; null = silent.
  std::ostream *Log = nullptr;
};

/// Result of one fuzz run.
struct FuzzReport {
  uint64_t Cases = 0;
  uint64_t ProgramCases = 0;
  uint64_t HistoryCases = 0;
  /// Cases on which the oracle reported at least one disagreement.
  uint64_t DisagreeingCases = 0;
  /// Minimized first disagreement of every disagreeing case.
  std::vector<Repro> Repros;
  /// Litmus files written (one per repro; empty when OutDir is empty).
  std::vector<std::string> ReproFiles;
  bool TimedOut = false;
  double ElapsedMillis = 0;
};

/// Runs the fuzz loop. Deterministic for fixed (Seed, Iterations, shape,
/// mutation) as long as the time budget does not cut the run short.
FuzzReport runFuzz(const FuzzOptions &Options);

} // namespace fuzz
} // namespace txdpor

#endif // TXDPOR_FUZZ_FUZZER_H
