//===- fuzz/Minimizer.h - Delta-debugging counterexample shrinking --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a disagreeing workload to a minimal repro while a caller-
/// supplied predicate ("the disagreement persists") keeps holding:
///
///   * minimizeHistory — transaction-granular delta debugging over a
///     history, via the shared prefix-closure shrinker
///     (history/Prefix.h: shrinkToCore);
///   * minimizeProgram — structural passes over a program: drop whole
///     sessions, drop transactions, drop individual instructions, then
///     simplify expressions (strip guards, collapse right-hand sides to
///     small constants).
///
/// Every candidate is rebuilt through ProgramBuilder so the result is a
/// well-formed program with compact session numbering; greedy passes
/// repeat to a fixpoint, so the result is locally minimal (1-minimal per
/// pass granularity). The predicate is typically "the differential
/// oracle still reports a disagreement of the same kind and level" —
/// see fuzz/Fuzzer.cpp for the canonical wiring.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_FUZZ_MINIMIZER_H
#define TXDPOR_FUZZ_MINIMIZER_H

#include "history/History.h"
#include "program/Program.h"

#include <functional>

namespace txdpor {
namespace fuzz {

/// True when the candidate still exhibits the behaviour being shrunk.
using HistoryPredicate = std::function<bool(const History &)>;
using ProgramPredicate = std::function<bool(const Program &)>;

/// Shrinks \p H to a locally-minimal history on which \p StillFails
/// holds. \p StillFails must hold on \p H itself.
History minimizeHistory(const History &H, const HistoryPredicate &StillFails);

/// Shrinks \p P to a locally-minimal program on which \p StillFails
/// holds: drop sessions → drop transactions → drop instructions →
/// simplify expressions. \p StillFails must hold on \p P itself.
Program minimizeProgram(const Program &P, const ProgramPredicate &StillFails);

} // namespace fuzz
} // namespace txdpor

#endif // TXDPOR_FUZZ_MINIMIZER_H
