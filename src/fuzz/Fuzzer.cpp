//===- fuzz/Fuzzer.cpp - The differential fuzzing driver ------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Minimizer.h"
#include "support/Deadline.h"
#include "trace/Counters.h"
#include "trace/Trace.h"

#include <filesystem>
#include <fstream>
#include <ostream>

using namespace txdpor;
using namespace txdpor::fuzz;

namespace {

bool hasDisagreement(const std::vector<Disagreement> &Ds,
                     Disagreement::Kind K, IsolationLevel Level) {
  for (const Disagreement &D : Ds)
    if (D.K == K && D.Level == Level)
      return true;
  return false;
}

/// Re-finds the disagreement matching (K, Level) after minimization (the
/// minimized workload may order its reports differently).
const Disagreement *findDisagreement(const std::vector<Disagreement> &Ds,
                                     Disagreement::Kind K,
                                     IsolationLevel Level) {
  for (const Disagreement &D : Ds)
    if (D.K == K && D.Level == Level)
      return &D;
  return nullptr;
}

std::string reproFileName(uint64_t Seed, uint64_t Case) {
  return "repro-s" + std::to_string(Seed) + "-c" + std::to_string(Case) +
         ".litmus";
}

} // namespace

FuzzReport txdpor::fuzz::runFuzz(const FuzzOptions &Options) {
  FuzzReport Report;
  Stopwatch Timer;
  Deadline Budget = Options.TimeBudgetMs > 0
                        ? Deadline::afterMillis(Options.TimeBudgetMs)
                        : Deadline::never();

  ProgramShape Shape = Options.Shape;
  if (!Options.ShapeName.empty()) {
    std::optional<ProgramShape> Preset = programShapeByName(Options.ShapeName);
    assert(Preset && "unknown shape preset (CLI validates the name)");
    if (Preset)
      Shape = *Preset;
  }
  HistoryShape HistShape = historyShapeFor(Shape);

  OracleConfig OracleCfg = Options.Oracle;
  OracleCfg.Mutation = Options.Mutation;
  DifferentialOracle Oracle(OracleCfg);

  if (!Options.OutDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(Options.OutDir, Ec);
    if (Ec && Options.Log)
      *Options.Log << "warning: cannot create repro directory '"
                   << Options.OutDir << "': " << Ec.message() << '\n';
  }

  for (uint64_t Case = 0; Case != Options.Iterations; ++Case) {
    if (Budget.expired()) {
      Report.TimedOut = true;
      break;
    }
    ++Report.Cases;
    TXDPOR_TRACE_SPAN(Fuzz, FuzzCase, Case);
    trace::bump(trace::Counter::FuzzCases);
    Rng R(Rng::deriveSeed(Options.Seed, Case));
    bool HistoryCase = R.chance(Options.HistoryCasePercent, 100);

    std::vector<Disagreement> Ds;
    std::optional<History> CaseHistory;
    std::optional<GeneratedCase> CaseProgram;
    if (HistoryCase) {
      ++Report.HistoryCases;
      CaseHistory = generateHistory(R, HistShape);
      Ds = Oracle.checkHistory(*CaseHistory);
    } else {
      ++Report.ProgramCases;
      CaseProgram = generateCase(R, Shape);
      if (!Options.ForcedSessionLevels.empty())
        CaseProgram->SessionLevels = Options.ForcedSessionLevels;
      Ds = Oracle.checkProgram(CaseProgram->Prog,
                               CaseProgram->SessionLevels);
    }
    if (Ds.empty())
      continue;

    ++Report.DisagreeingCases;
    Disagreement First = Ds.front();
    if (Options.Log)
      *Options.Log << "case " << Case << " (" << disagreementKindName(First.K)
                   << " at " << isolationLevelName(First.Level)
                   << "): " << First.Detail << '\n';

    Repro R2;
    R2.Seed = Options.Seed;
    R2.CaseIndex = Case;
    R2.Kind = First.K;
    R2.Level = First.Level;
    R2.ProductionVerdict = First.ProductionVerdict;
    R2.ReferenceVerdict = First.ReferenceVerdict;
    R2.Detail = First.Detail;

    if (HistoryCase) {
      History Core = *CaseHistory;
      if (Options.Minimize) {
        Core = minimizeHistory(*CaseHistory, [&](const History &C) {
          return hasDisagreement(Oracle.checkHistory(C), First.K,
                                 First.Level);
        });
        std::vector<Disagreement> Fresh = Oracle.checkHistory(Core);
        if (const Disagreement *D =
                findDisagreement(Fresh, First.K, First.Level)) {
          R2.Detail = D->Detail;
          R2.ProductionVerdict = D->ProductionVerdict;
          R2.ReferenceVerdict = D->ReferenceVerdict;
        }
      }
      R2.Hist = Core;
    } else {
      Program Core = CaseProgram->Prog;
      const std::vector<IsolationLevel> &Mix = CaseProgram->SessionLevels;
      // The session-level mix is indexed per session, so it loses its
      // meaning once the minimizer starts dropping sessions; shrink
      // under the full default sweep instead — but only when that sweep
      // reproduces the disagreement on the unshrunk program (for a
      // mix-less case it trivially does — Ds came from that very sweep;
      // a mix-narrowed finding can vanish under the wider sweep, e.g.
      // when a weaker base level blows past MaxHistoriesPerCase).
      auto StillFails = [&](const Program &C) {
        return hasDisagreement(Oracle.checkProgram(C), First.K,
                               First.Level);
      };
      // A *mixed-semantics* finding (MixLevels set) can only reproduce
      // with its mix, which the default-sweep predicate above never
      // passes — shrinking would latch any coincidental uniform
      // disagreement of the same (kind, level) and drop the mix from
      // the repro. Ship those unshrunk, mix on record.
      bool Minimized = false;
      if (Options.Minimize && First.MixLevels.empty() &&
          (Mix.empty() || StillFails(CaseProgram->Prog))) {
        Core = minimizeProgram(CaseProgram->Prog, StillFails);
        Minimized = true;
      }
      R2.Prog = Core;
      // A minimized program reproduces under the default sweep; an
      // unminimized one needs its mix on record (a mix-narrowed or
      // mixed-semantics finding may not show under the wider default
      // sweep). Prefer the mix the disagreement itself was found under.
      if (!Minimized)
        R2.SessionLevels = First.MixLevels.empty() ? Mix : First.MixLevels;
      // For history-scoped kinds, also ship the (minimized) culprit.
      // Without minimization the original report already has it; after
      // minimization re-run the oracle on the shrunk program.
      std::vector<Disagreement> Fresh;
      const Disagreement *D = &First;
      if (Minimized) {
        Fresh = Oracle.checkProgram(Core);
        D = findDisagreement(Fresh, First.K, First.Level);
      }
      if (D) {
        R2.Detail = D->Detail;
        R2.ProductionVerdict = D->ProductionVerdict;
        R2.ReferenceVerdict = D->ReferenceVerdict;
        if (D->Culprit) {
          History Culprit = *D->Culprit;
          // checkHistory runs the uniform per-level sweep only, so a
          // culprit from a *mixed-semantics* disagreement cannot be
          // shrunk against it — the mixed mismatch would never
          // reproduce and every candidate would be rejected (or, worse,
          // a coincidental uniform mismatch would steer the shrink
          // toward a different bug). Ship such culprits unshrunk.
          if (Options.Minimize && First.MixLevels.empty() &&
              (First.K == Disagreement::Kind::CheckerVerdictMismatch ||
               First.K == Disagreement::Kind::WitnessMismatch ||
               First.K == Disagreement::Kind::StreamingVerdictMismatch))
            Culprit = minimizeHistory(Culprit, [&](const History &C) {
              return hasDisagreement(Oracle.checkHistory(C), First.K,
                                     First.Level);
            });
          R2.Hist = Culprit;
        }
      }
    }

    if (!Options.OutDir.empty()) {
      std::filesystem::path File =
          std::filesystem::path(Options.OutDir) /
          reproFileName(Options.Seed, Case);
      std::ofstream OS(File);
      OS << writeRepro(R2);
      OS.flush();
      if (OS.good()) {
        Report.ReproFiles.push_back(File.string());
        if (Options.Log)
          *Options.Log << "  wrote " << File.string() << '\n';
      } else if (Options.Log) {
        *Options.Log << "  warning: failed to write " << File.string()
                     << '\n';
      }
    }
    Report.Repros.push_back(std::move(R2));

    if (Options.MaxDisagreements &&
        Report.DisagreeingCases >= Options.MaxDisagreements)
      break;
  }

  Report.ElapsedMillis = Timer.elapsedMillis();
  return Report;
}
