//===- fuzz/Minimizer.cpp - Delta-debugging counterexample shrinking ------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimizer.h"

#include "history/Prefix.h"

using namespace txdpor;
using namespace txdpor::fuzz;

History txdpor::fuzz::minimizeHistory(const History &H,
                                      const HistoryPredicate &StillFails) {
  return shrinkToCore(H, StillFails);
}

namespace {

/// Mutable intermediate representation of one transaction: the name, the
/// local names in interning order (so LocalIds in the copied instructions
/// keep meaning), and the body.
struct TxnSketch {
  std::string Name;
  std::vector<std::string> Locals;
  std::vector<Instr> Body;
};

/// Mutable program: sessions of transaction sketches plus variable names.
/// A declared per-session level assignment travels with the sessions so
/// dropping session K drops its level too (and session compaction keeps
/// level/session alignment).
struct ProgramSketch {
  std::vector<std::vector<TxnSketch>> Sessions;
  std::vector<std::string> Vars;
  bool HasLevels = false;
  IsolationLevel DefaultLevel = IsolationLevel::CausalConsistency;
  std::vector<IsolationLevel> Levels; ///< Parallel to Sessions (HasLevels).
};

ProgramSketch sketchOf(const Program &P) {
  ProgramSketch S;
  for (VarId V = 0; V != P.numVars(); ++V)
    S.Vars.push_back(P.varName(V));
  S.Sessions.resize(P.numSessions());
  if (P.levels().hasExplicit()) {
    S.HasLevels = true;
    S.DefaultLevel = P.levels().defaultLevel();
    for (unsigned Sess = 0; Sess != P.numSessions(); ++Sess)
      S.Levels.push_back(P.levels().levelFor(Sess));
  }
  for (unsigned Sess = 0; Sess != P.numSessions(); ++Sess) {
    for (unsigned T = 0; T != P.numTxns(Sess); ++T) {
      const Transaction &Txn = P.txn({Sess, T});
      TxnSketch Sketch;
      Sketch.Name = Txn.name();
      for (LocalId L = 0; L != Txn.numLocals(); ++L)
        Sketch.Locals.push_back(Txn.localName(L));
      Sketch.Body = Txn.body();
      S.Sessions[Sess].push_back(std::move(Sketch));
    }
  }
  return S;
}

Program buildFrom(const ProgramSketch &S) {
  ProgramBuilder B;
  if (S.HasLevels)
    B.defaultLevel(S.DefaultLevel);
  for (const std::string &V : S.Vars)
    B.var(V);
  unsigned NextSession = 0;
  for (size_t Sess = 0; Sess != S.Sessions.size(); ++Sess) {
    const std::vector<TxnSketch> &Session = S.Sessions[Sess];
    if (Session.empty())
      continue; // Dropped sessions compact the numbering.
    if (S.HasLevels && Sess < S.Levels.size())
      B.sessionLevel(NextSession, S.Levels[Sess]);
    for (const TxnSketch &Sketch : Session) {
      auto T = B.beginTxn(NextSession, Sketch.Name);
      for (const std::string &L : Sketch.Locals)
        T.internLocal(L);
      for (const Instr &I : Sketch.Body)
        T.append(I);
    }
    ++NextSession;
  }
  return B.build();
}

/// Tries \p Candidate; on success commits it into \p Best and returns
/// true.
bool accept(const ProgramSketch &Candidate, const ProgramPredicate &StillFails,
            ProgramSketch &Best) {
  Program P = buildFrom(Candidate);
  if (P.numSessions() == 0)
    return false; // The empty program is never an interesting repro.
  if (!StillFails(P))
    return false;
  Best = Candidate;
  return true;
}

bool dropSessions(ProgramSketch &S, const ProgramPredicate &StillFails) {
  bool Changed = false;
  for (unsigned Sess = static_cast<unsigned>(S.Sessions.size()); Sess-- > 0;) {
    if (S.Sessions[Sess].empty())
      continue;
    ProgramSketch Candidate = S;
    Candidate.Sessions.erase(Candidate.Sessions.begin() + Sess);
    if (Candidate.HasLevels && Sess < Candidate.Levels.size())
      Candidate.Levels.erase(Candidate.Levels.begin() + Sess);
    if (accept(Candidate, StillFails, S))
      Changed = true;
  }
  return Changed;
}

bool dropTransactions(ProgramSketch &S, const ProgramPredicate &StillFails) {
  bool Changed = false;
  for (unsigned Sess = static_cast<unsigned>(S.Sessions.size()); Sess-- > 0;) {
    // Latest transactions first: they have no session successors, so
    // removing them perturbs the rest of the session least.
    for (unsigned T = static_cast<unsigned>(S.Sessions[Sess].size());
         T-- > 0;) {
      ProgramSketch Candidate = S;
      Candidate.Sessions[Sess].erase(Candidate.Sessions[Sess].begin() + T);
      if (accept(Candidate, StillFails, S))
        Changed = true;
    }
  }
  return Changed;
}

bool dropInstructions(ProgramSketch &S, const ProgramPredicate &StillFails) {
  bool Changed = false;
  for (unsigned Sess = static_cast<unsigned>(S.Sessions.size()); Sess-- > 0;) {
    for (unsigned T = static_cast<unsigned>(S.Sessions[Sess].size());
         T-- > 0;) {
      for (unsigned I =
               static_cast<unsigned>(S.Sessions[Sess][T].Body.size());
           I-- > 0;) {
        ProgramSketch Candidate = S;
        std::vector<Instr> &Body = Candidate.Sessions[Sess][T].Body;
        Body.erase(Body.begin() + I);
        if (accept(Candidate, StillFails, S))
          Changed = true;
      }
    }
  }
  return Changed;
}

bool simplifyExpressions(ProgramSketch &S, const ProgramPredicate &StillFails) {
  bool Changed = false;
  for (unsigned Sess = 0; Sess != S.Sessions.size(); ++Sess) {
    for (unsigned T = 0; T != S.Sessions[Sess].size(); ++T) {
      for (unsigned I = 0; I != S.Sessions[Sess][T].Body.size(); ++I) {
        const Instr &Orig = S.Sessions[Sess][T].Body[I];
        // Strip the guard (makes the instruction unconditional).
        if (Orig.Guard.valid()) {
          ProgramSketch Candidate = S;
          Candidate.Sessions[Sess][T].Body[I].Guard = ExprRef();
          if (accept(Candidate, StillFails, S)) {
            Changed = true;
            continue;
          }
        }
        // Collapse a non-trivial right-hand side to a small constant.
        if (Orig.Rhs.valid() &&
            Orig.Rhs.Node->kind() != ExprKind::Const) {
          ProgramSketch Candidate = S;
          Candidate.Sessions[Sess][T].Body[I].Rhs = ExprRef(1);
          if (accept(Candidate, StillFails, S))
            Changed = true;
        }
      }
    }
  }
  return Changed;
}

} // namespace

Program txdpor::fuzz::minimizeProgram(const Program &P,
                                      const ProgramPredicate &StillFails) {
  assert(StillFails(P) && "nothing to minimize: the predicate must hold");
  ProgramSketch S = sketchOf(P);
  // Coarse-to-fine greedy passes, repeated until a full sweep changes
  // nothing (dropping an instruction can unlock dropping a session, so a
  // single ordered pass is not enough).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Changed |= dropSessions(S, StillFails);
    Changed |= dropTransactions(S, StillFails);
    Changed |= dropInstructions(S, StillFails);
    Changed |= simplifyExpressions(S, StillFails);
  }
  return buildFrom(S);
}
