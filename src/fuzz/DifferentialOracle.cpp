//===- fuzz/DifferentialOracle.cpp - Cross-checking explorers/checkers ----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "fuzz/DifferentialOracle.h"

#include "consistency/BruteForceChecker.h"
#include "consistency/IncrementalChecker.h"
#include "consistency/SaturationChecker.h"
#include "consistency/StreamingChecker.h"
#include "consistency/Witness.h"
#include "core/Enumerate.h"
#include "core/Swap.h"
#include "parallel/ParallelExplorer.h"
#include "trace_io/TraceReader.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace txdpor;
using namespace txdpor::fuzz;

std::optional<CheckerMutation>
txdpor::fuzz::checkerMutationByName(const std::string &Name) {
  if (Name == "none")
    return CheckerMutation::None;
  if (Name == "weak-cc")
    return CheckerMutation::WeakCausalPremise;
  if (Name == "weak-ra")
    return CheckerMutation::WeakAtomicVisibility;
  return std::nullopt;
}

const char *txdpor::fuzz::checkerMutationName(CheckerMutation M) {
  switch (M) {
  case CheckerMutation::None:
    return "none";
  case CheckerMutation::WeakCausalPremise:
    return "weak-cc";
  case CheckerMutation::WeakAtomicVisibility:
    return "weak-ra";
  }
  return "none";
}

bool txdpor::fuzz::mutatedIsConsistent(const History &H, IsolationLevel Level,
                                       CheckerMutation M) {
  // Each mutation decides its level with the axiom premise of the next
  // weaker saturation level — exactly a weakened instance of the §2.2.2
  // axiom schema (the forced-edge set shrinks, so the verdict can only
  // flip from inconsistent to consistent).
  switch (M) {
  case CheckerMutation::None:
    break;
  case CheckerMutation::WeakCausalPremise:
    if (Level == IsolationLevel::CausalConsistency)
      return SaturationChecker(IsolationLevel::ReadAtomic).isConsistent(H);
    break;
  case CheckerMutation::WeakAtomicVisibility:
    if (Level == IsolationLevel::ReadAtomic)
      return SaturationChecker(IsolationLevel::ReadCommitted).isConsistent(H);
    break;
  }
  return isConsistent(H, Level);
}

const char *txdpor::fuzz::disagreementKindName(Disagreement::Kind K) {
  switch (K) {
  case Disagreement::Kind::ExplorerSetMismatch:
    return "explorer-set-mismatch";
  case Disagreement::Kind::DuplicateOutput:
    return "duplicate-output";
  case Disagreement::Kind::StarFilterMismatch:
    return "star-filter-mismatch";
  case Disagreement::Kind::CheckerVerdictMismatch:
    return "checker-verdict-mismatch";
  case Disagreement::Kind::WitnessMismatch:
    return "witness-mismatch";
  case Disagreement::Kind::IncrementalVerdictMismatch:
    return "incremental-verdict-mismatch";
  case Disagreement::Kind::StreamingVerdictMismatch:
    return "streaming-verdict-mismatch";
  case Disagreement::Kind::DedupVerdictMismatch:
    return "dedup-verdict-mismatch";
  case Disagreement::Kind::IncrementalSwapStateMismatch:
    return "incremental-swap-state-mismatch";
  case Disagreement::Kind::CarriedFingerprintMismatch:
    return "carried-fingerprint-mismatch";
  }
  return "unknown";
}

std::optional<Disagreement::Kind>
txdpor::fuzz::disagreementKindByName(const std::string &Name) {
  for (Disagreement::Kind K :
       {Disagreement::Kind::ExplorerSetMismatch,
        Disagreement::Kind::DuplicateOutput,
        Disagreement::Kind::StarFilterMismatch,
        Disagreement::Kind::CheckerVerdictMismatch,
        Disagreement::Kind::WitnessMismatch,
        Disagreement::Kind::IncrementalVerdictMismatch,
        Disagreement::Kind::StreamingVerdictMismatch,
        Disagreement::Kind::DedupVerdictMismatch,
        Disagreement::Kind::IncrementalSwapStateMismatch,
        Disagreement::Kind::CarriedFingerprintMismatch})
    if (Name == disagreementKindName(K))
      return K;
  return std::nullopt;
}

namespace {

std::map<std::string, unsigned> keyMultiset(const std::vector<History> &Hs) {
  std::map<std::string, unsigned> Counts;
  for (const History &H : Hs)
    ++Counts[H.canonicalKey()];
  return Counts;
}

/// Renders a terse multiset diff ("only in A: 2 keys; only in B: 1 key").
std::string diffSummary(const std::map<std::string, unsigned> &A,
                        const std::map<std::string, unsigned> &B,
                        const char *NameA, const char *NameB) {
  unsigned OnlyA = 0, OnlyB = 0, CountDiff = 0;
  for (const auto &[Key, N] : A) {
    auto It = B.find(Key);
    if (It == B.end())
      ++OnlyA;
    else if (It->second != N)
      ++CountDiff;
  }
  for (const auto &[Key, N] : B)
    if (!A.count(Key))
      ++OnlyB;
  std::ostringstream OS;
  OS << "only in " << NameA << ": " << OnlyA << ", only in " << NameB << ": "
     << OnlyB << ", multiplicity diffs: " << CountDiff;
  return OS.str();
}

/// True if \p H satisfies the ordered-history discipline ConstraintState
/// requires (see consistency/IncrementalChecker.h): no pending
/// transaction and every so ∪ wr edge forward in block order. Explorer
/// outputs always qualify; raw generated histories usually do but are
/// checked rather than assumed.
bool incrementalEligible(const History &H) {
  unsigned N = H.numTxns();
  if (N == 0 || !H.txn(0).isInit())
    return false;
  for (unsigned I = 0; I != N; ++I)
    if (H.txn(I).isPending())
      return false;
  const Relation &SoWr = H.soWrRelation();
  for (unsigned A = 0; A != N; ++A) {
    bool Forward = true;
    SoWr.forEachSuccessor(A, [&](unsigned B) { Forward &= A < B; });
    if (!Forward)
      return false;
  }
  return true;
}

/// The incremental-vs-scratch diff of one history under one assignment
/// (uniform or mixed): the leg that keeps the engine's carried
/// ConstraintState honest against the reference saturation checkers.
std::optional<Disagreement>
diffIncremental(const History &H, const LevelAssignment &Levels) {
  if (!Levels.allPrefixClosedCausallyExtensible())
    return std::nullopt;
  bool Incremental = ConstraintState(H, Levels).consistent();
  bool Scratch = isConsistent(H, Levels);
  if (Incremental == Scratch)
    return std::nullopt;
  Disagreement D;
  D.K = Disagreement::Kind::IncrementalVerdictMismatch;
  D.Level = Levels.strongest();
  D.Culprit = H;
  D.ProductionVerdict = Incremental;
  D.ReferenceVerdict = Scratch;
  D.Detail = std::string("incremental ConstraintState says ") +
             (Incremental ? "consistent" : "inconsistent") +
             ", scratch saturation says " +
             (Scratch ? "consistent" : "inconsistent") + " under " +
             Levels.str();
  return D;
}

/// The swap-child-rebuild diff of one history under one assignment: the
/// state of every reordering candidate's swapped history is built both
/// ways — bulk from block zero, and incrementally by copying the cached
/// prefix state below the reader and replaying only the changed blocks —
/// and the two must be logically equivalent. The leg that keeps the
/// engine's O(delta) swap fan-out rebuild honest against the bulk
/// constructor it replaced on the hot path.
std::optional<Disagreement>
diffSwapRebuild(const History &H, const LevelAssignment &Levels) {
  if (!Levels.allPrefixClosedCausallyExtensible())
    return std::nullopt;
  std::vector<Reordering> Rs = computeReorderings(H);
  if (Rs.empty())
    return std::nullopt;
  PrefixStateCache Cache(H, Levels, 0);
  for (const Reordering &R : Rs) {
    History Swapped = applySwap(H, R);
    ConstraintState Bulk(Swapped, Levels);
    ConstraintState Incr = Cache.stateFor(R.ReaderTxn);
    Incr.replayBlocks(Swapped, R.ReaderTxn, Swapped.numTxns());
    if (Incr.equivalentTo(Bulk))
      continue;
    Disagreement D;
    D.K = Disagreement::Kind::IncrementalSwapStateMismatch;
    D.Level = Levels.strongest();
    D.Culprit = H;
    D.ProductionVerdict = Incr.consistent();
    D.ReferenceVerdict = Bulk.consistent();
    D.Detail = "incremental swap-child rebuild (reader txn " +
               std::to_string(R.ReaderTxn) + ", read pos " +
               std::to_string(R.ReadPos) +
               ") is not equivalent to the bulk state under " + Levels.str();
    return D;
  }
  return std::nullopt;
}

/// Outcome of one windowed streaming re-check of a serialized history.
enum class StreamVerdict : uint8_t {
  Consistent, ///< Whole trace accepted.
  Anomaly,    ///< Isolation violation reported.
  Refused,    ///< Stale-read refusal — legitimate under a small budget.
  Broken      ///< Round-tripped trace rejected as malformed: always a bug.
};

/// Streams \p Trace (a serialized jsonl trace) through a fresh
/// StreamingChecker at \p Window, returning the verdict. \p Detail gets
/// the checker/reader diagnostic for Refused/Broken.
StreamVerdict streamTrace(const std::string &Trace,
                          const LevelAssignment &Levels, unsigned Window,
                          std::string &Detail) {
  std::istringstream In(Trace);
  trace_io::TraceReader Reader(In);
  if (!Reader.valid()) {
    Detail = "reader rejected round-tripped trace: " + Reader.error();
    return StreamVerdict::Broken;
  }
  StreamingOptions SOpts;
  SOpts.Levels = Levels;
  SOpts.NumVars = Reader.header().NumVars;
  SOpts.NumSessions = Reader.header().NumSessions;
  SOpts.WindowBudget = Window;
  StreamingChecker Checker(SOpts);
  TransactionLog Log(TxnUid::init());
  std::string Diag;
  for (;;) {
    switch (Reader.next(Log)) {
    case trace_io::TraceReader::Next::End:
      return StreamVerdict::Consistent;
    case trace_io::TraceReader::Next::Error:
      Detail = "reader choked on round-tripped record: " + Reader.error();
      return StreamVerdict::Broken;
    case trace_io::TraceReader::Next::Txn:
      break;
    }
    switch (Checker.append(Log, &Diag)) {
    case StreamStatus::Ok:
      break;
    case StreamStatus::Anomaly:
      return StreamVerdict::Anomaly;
    case StreamStatus::StaleRead:
      Detail = Diag;
      return StreamVerdict::Refused;
    case StreamStatus::Malformed:
      Detail = "streaming checker rejected round-tripped record: " + Diag;
      return StreamVerdict::Broken;
    }
  }
}

/// The streaming leg over one history and one assignment: serialize,
/// re-parse, stream at every budget in \p Windows, and diff against
/// \p Expected (the full-history verdict). Returns at most one
/// disagreement — the first mismatching budget.
std::optional<Disagreement>
diffStreaming(const History &H, const LevelAssignment &Levels, bool Expected,
              const std::vector<unsigned> &Windows) {
  trace_io::TraceHeader Hdr;
  std::vector<TransactionLog> Txns;
  std::string Err;
  if (!trace_io::traceFromHistory(H, Levels, Hdr, Txns, &Err))
    return std::nullopt; // Not trace-shaped (caller screens; belt only).
  std::ostringstream OS;
  trace_io::writeTrace(OS, Hdr, Txns, trace_io::TraceFormat::Jsonl);
  std::string Trace = OS.str();

  for (unsigned Window : Windows) {
    std::string Detail;
    StreamVerdict V = streamTrace(Trace, Levels, Window, Detail);
    if (V == StreamVerdict::Refused)
      continue; // An honest "raise the budget" — not a verdict.
    bool Mismatch = V == StreamVerdict::Broken ||
                    (V == StreamVerdict::Anomaly) == Expected;
    if (!Mismatch)
      continue;
    Disagreement D;
    D.K = Disagreement::Kind::StreamingVerdictMismatch;
    D.Level = Levels.strongest();
    D.Culprit = H;
    D.ProductionVerdict = V == StreamVerdict::Consistent;
    D.ReferenceVerdict = Expected;
    D.Detail =
        "streaming(window " + std::to_string(Window) + ") says " +
        (V == StreamVerdict::Broken
             ? "malformed"
             : (V == StreamVerdict::Anomaly ? "inconsistent" : "consistent")) +
        ", full-history production says " +
        (Expected ? "consistent" : "inconsistent") + " under " + Levels.str() +
        (Detail.empty() ? "" : " — " + Detail);
    return D;
  }
  return std::nullopt;
}

} // namespace

void DifferentialOracle::checkOneHistory(
    const History &H, const std::vector<IsolationLevel> &Levels,
    std::vector<Disagreement> &Out, bool Stream) const {
  if (Config.MaxBruteForceTxns && H.numTxns() > Config.MaxBruteForceTxns)
    return;
  if (Config.CrossCheckIncremental && incrementalEligible(H)) {
    for (IsolationLevel Level : Levels) {
      if (!isPrefixClosedCausallyExtensible(Level) ||
          Level == IsolationLevel::Trivial)
        continue;
      if (std::optional<Disagreement> D =
              diffIncremental(H, LevelAssignment::uniform(Level)))
        Out.push_back(std::move(*D));
      if (std::optional<Disagreement> D =
              diffSwapRebuild(H, LevelAssignment::uniform(Level)))
        Out.push_back(std::move(*D));
    }
  }
  for (IsolationLevel Level : Levels) {
    bool Reference = BruteForceChecker(Level).isConsistent(H);
    if (Config.CrossCheckVerdicts) {
      bool Production = mutatedIsConsistent(H, Level, Config.Mutation);
      if (Production != Reference) {
        Disagreement D;
        D.K = Disagreement::Kind::CheckerVerdictMismatch;
        D.Level = Level;
        D.Culprit = H;
        D.ProductionVerdict = Production;
        D.ReferenceVerdict = Reference;
        D.Detail = std::string("production says ") +
                   (Production ? "consistent" : "inconsistent") +
                   ", brute-force Def. 2.2 says " +
                   (Reference ? "consistent" : "inconsistent");
        Out.push_back(std::move(D));
      }
    }
    if (Config.ValidateWitnesses) {
      std::optional<std::vector<unsigned>> Order = findCommitOrder(H, Level);
      if (Order.has_value() != Reference) {
        Disagreement D;
        D.K = Disagreement::Kind::WitnessMismatch;
        D.Level = Level;
        D.Culprit = H;
        D.ProductionVerdict = Order.has_value();
        D.ReferenceVerdict = Reference;
        D.Detail = std::string("findCommitOrder ") +
                   (Order ? "returned a certificate" : "found none") +
                   " but the reference verdict is " +
                   (Reference ? "consistent" : "inconsistent");
        Out.push_back(std::move(D));
      } else if (Order && !validateCommitOrder(H, Level, *Order)) {
        Disagreement D;
        D.K = Disagreement::Kind::WitnessMismatch;
        D.Level = Level;
        D.Culprit = H;
        D.ProductionVerdict = true;
        D.ReferenceVerdict = Reference;
        D.Detail = "findCommitOrder returned a certificate that fails "
                   "validateCommitOrder";
        Out.push_back(std::move(D));
      }
    }
  }
  // Streaming leg, deliberately last: a weakened production checker
  // (CheckerMutation) should surface as a checker-verdict-mismatch first
  // and a streaming mismatch second, keeping the primary finding stable.
  // Comparing against the *mutated* verdict gives this leg the same
  // teeth: a mutation weakens Expected, the streaming side stays exact.
  if (Config.DiffStreaming && Stream && incrementalEligible(H)) {
    for (IsolationLevel Level : Levels) {
      if (!isPrefixClosedCausallyExtensible(Level) ||
          Level == IsolationLevel::Trivial)
        continue;
      if (std::optional<Disagreement> D = diffStreaming(
              H, LevelAssignment::uniform(Level),
              mutatedIsConsistent(H, Level, Config.Mutation),
              Config.StreamingWindows))
        Out.push_back(std::move(*D));
    }
  }
}

std::vector<Disagreement> DifferentialOracle::checkHistory(
    const History &H) const {
  std::vector<Disagreement> Out;
  checkOneHistory(H, Config.VerdictLevels, Out);
  return Out;
}

void DifferentialOracle::checkMixedSemantics(
    const Program &P, const std::vector<IsolationLevel> &SessionLevels,
    std::vector<Disagreement> &Out) const {
  // Clamp the sampled mix to the causally-extensible chain (identically
  // for every leg below): SI/SER cannot drive ValidWrites, so such
  // sessions explore — and are verdict-checked — at CC.
  LevelAssignment Mix(IsolationLevel::CausalConsistency);
  for (unsigned S = 0; S != SessionLevels.size(); ++S) {
    IsolationLevel L = SessionLevels[S];
    if (!isPrefixClosedCausallyExtensible(L))
      L = IsolationLevel::CausalConsistency;
    Mix.set(S, L);
  }
  LevelAssignment Resolved = Mix.resolved(P.numSessions());
  if (!Resolved.isMixed())
    return; // Collapses to a uniform base; the classic legs cover it.

  auto MakeDisagreement = [&](Disagreement::Kind K, std::string Detail) {
    Disagreement D;
    D.K = K;
    D.Level = Resolved.strongest();
    D.MixLevels = SessionLevels;
    D.Detail = std::move(Detail);
    return D;
  };

  ExplorerConfig Recursive = ExplorerConfig::exploreCEMixed(Mix);
  if (Config.MaxHistoriesPerCase)
    Recursive.MaxEndStates = Config.MaxHistoriesPerCase + 1;
  EnumerationResult Ref = enumerateHistories(P, Recursive);
  if (Config.MaxHistoriesPerCase &&
      (Ref.Stats.HitEndStateCap ||
       Ref.Histories.size() > Config.MaxHistoriesPerCase))
    return; // Too large to diff affordably.
  auto RefKeys = keyMultiset(Ref.Histories);

  // Strong optimality must survive the mixed base: no duplicates.
  for (const auto &[Key, N] : RefKeys) {
    if (N == 1)
      continue;
    Disagreement D = MakeDisagreement(
        Disagreement::Kind::DuplicateOutput,
        "recursive explorer emitted one history " + std::to_string(N) +
            " times under mix(" + Resolved.str() + ")");
    for (const History &H : Ref.Histories)
      if (H.canonicalKey() == Key) {
        D.Culprit = H;
        break;
      }
    Out.push_back(std::move(D));
    break;
  }

  // Driver diffs under the mixed base: iterative and parallel walks must
  // reproduce the recursive output multiset (thread-count invariance).
  ExplorerConfig Iterative = Recursive;
  Iterative.Iterative = true;
  auto IterKeys = keyMultiset(enumerateHistories(P, Iterative).Histories);
  if (IterKeys != RefKeys)
    Out.push_back(MakeDisagreement(
        Disagreement::Kind::ExplorerSetMismatch,
        "iterative vs recursive under mix(" + Resolved.str() +
            "): " + diffSummary(IterKeys, RefKeys, "iterative", "recursive")));

  if (Config.Threads > 1) {
    ExplorerConfig Par = Recursive;
    Par.Threads = Config.Threads;
    std::vector<History> ParHistories;
    ParallelExplorer E(P, Par);
    E.run([&](const History &H) { ParHistories.push_back(H); });
    auto ParKeys = keyMultiset(ParHistories);
    if (ParKeys != RefKeys)
      Out.push_back(MakeDisagreement(
          Disagreement::Kind::ExplorerSetMismatch,
          "parallel(" + std::to_string(Config.Threads) +
              ") vs recursive under mix(" + Resolved.str() +
              "): " + diffSummary(ParKeys, RefKeys, "parallel",
                                  "recursive")));
  }

  // Dedup under the mixed base: exact must reproduce the multiset;
  // symmetry must stay inside it (sessions at different levels land in
  // different structural classes, so a level mix *shrinks* the symmetry
  // available — never the soundness). Verdict-existence equality is
  // exercised by the uniform leg; here the set containment is the
  // mixed-specific property.
  if (Config.DiffDedup) {
    // DedupVerifyCarried mirrors the uniform leg: the carried-fingerprint
    // maintenance must survive mixed bases too (different per-session
    // levels shrink the structural classes it canonicalizes over).
    ExplorerConfig Exact = Recursive;
    Exact.Dedup = DedupMode::Exact;
    Exact.DedupVerifyCarried = true;
    EnumerationResult ExactRes = enumerateHistories(P, Exact);
    auto ExactKeys = keyMultiset(ExactRes.Histories);
    if (ExactKeys != RefKeys)
      Out.push_back(MakeDisagreement(
          Disagreement::Kind::DedupVerdictMismatch,
          "dedup=exact vs dedup=off under mix(" + Resolved.str() +
              "): " + diffSummary(ExactKeys, RefKeys, "exact", "off")));
    if (ExactRes.Stats.DedupFpMismatches != 0)
      Out.push_back(MakeDisagreement(
          Disagreement::Kind::CarriedFingerprintMismatch,
          "dedup=exact under mix(" + Resolved.str() + "): " +
              std::to_string(ExactRes.Stats.DedupFpMismatches) +
              " carried fingerprints differ from the from-scratch "
              "fingerprint"));
    ExplorerConfig Sym = Recursive;
    Sym.Dedup = DedupMode::Symmetry;
    Sym.DedupVerifyCarried = true;
    EnumerationResult SymRes = enumerateHistories(P, Sym);
    if (SymRes.Stats.DedupFpMismatches != 0)
      Out.push_back(MakeDisagreement(
          Disagreement::Kind::CarriedFingerprintMismatch,
          "dedup=symmetry under mix(" + Resolved.str() + "): " +
              std::to_string(SymRes.Stats.DedupFpMismatches) +
              " carried fingerprints differ from the from-scratch "
              "fingerprint"));
    auto SymKeys = keyMultiset(SymRes.Histories);
    for (const auto &[Key, N] : SymKeys) {
      auto It = RefKeys.find(Key);
      if (It == RefKeys.end() || It->second < N) {
        Out.push_back(MakeDisagreement(
            Disagreement::Kind::DedupVerdictMismatch,
            "dedup=symmetry emitted histories outside the dedup=off set "
            "under mix(" +
                Resolved.str() +
                "): " + diffSummary(SymKeys, RefKeys, "symmetry", "off")));
        break;
      }
    }
  }

  // Completeness/soundness against the Def. 2.2 reference with
  // per-transaction commit tests: the mixed output set must equal the
  // explore-ce(true) set re-filtered by BruteForceChecker(assignment).
  BruteForceChecker Reference(Resolved);
  bool BruteAffordable =
      !Config.MaxBruteForceTxns ||
      P.totalTxns() + 1 <= Config.MaxBruteForceTxns;
  if (BruteAffordable) {
    ExplorerConfig All =
        ExplorerConfig::exploreCE(IsolationLevel::Trivial);
    if (Config.MaxHistoriesPerCase)
      All.MaxEndStates = 4 * Config.MaxHistoriesPerCase + 1;
    EnumerationResult Universe = enumerateHistories(P, All);
    if (!(Config.MaxHistoriesPerCase &&
          (Universe.Stats.HitEndStateCap ||
           Universe.Histories.size() > 4 * Config.MaxHistoriesPerCase))) {
      std::vector<History> Expected;
      for (const History &H : Universe.Histories)
        if (Reference.isConsistent(H))
          Expected.push_back(H);
      auto Want = keyMultiset(Expected);
      if (RefKeys != Want)
        Out.push_back(MakeDisagreement(
            Disagreement::Kind::ExplorerSetMismatch,
            "explore-ce(mix " + Resolved.str() +
                ") vs brute-force-filtered explore-ce(true): " +
                diffSummary(RefKeys, Want, "mixed", "reference")));
    }
  }

  // Per-output verdict cross-check: the production mixed saturation
  // checker against the brute-force reference. Every output must also be
  // consistent under its own base assignment (explore-ce soundness).
  // Mixed incremental leg: the shared ConstraintState core must agree
  // with the scratch mixed checker on every mixed-base output. Runs
  // independently of CrossCheckVerdicts (it guards the incremental/
  // scratch equivalence, not the axiom semantics) and needs no
  // brute-force affordability cap — both sides are polynomial.
  if (Config.CrossCheckIncremental) {
    for (const History &H : Ref.Histories) {
      if (Out.size() >= 8)
        break;
      if (std::optional<Disagreement> D = diffIncremental(H, Resolved)) {
        D->MixLevels = SessionLevels;
        Out.push_back(std::move(*D));
      }
      if (std::optional<Disagreement> D = diffSwapRebuild(H, Resolved)) {
        D->MixLevels = SessionLevels;
        Out.push_back(std::move(*D));
      }
    }
  }

  // Mixed streaming leg: serialize each mixed-base output and re-check
  // it through the windowed checker under the resolved assignment,
  // against the scratch mixed verdict (mutations target uniform levels;
  // this leg guards eviction and round-trip under per-session mixes).
  if (Config.DiffStreaming) {
    unsigned Streamed = 0;
    for (const History &H : Ref.Histories) {
      if (Out.size() >= 8)
        break;
      if (Config.MaxStreamedHistoriesPerCase &&
          Streamed >= Config.MaxStreamedHistoriesPerCase)
        break;
      if (!incrementalEligible(H))
        continue;
      ++Streamed;
      if (std::optional<Disagreement> D =
              diffStreaming(H, Resolved, isConsistent(H, Resolved),
                            Config.StreamingWindows)) {
        D->MixLevels = SessionLevels;
        Out.push_back(std::move(*D));
      }
    }
  }

  if (Config.CrossCheckVerdicts) {
    MixedSaturationChecker Production(Resolved);
    for (const History &H : Ref.Histories) {
      if (Out.size() >= 8)
        break;
      if (Config.MaxBruteForceTxns &&
          H.numTxns() > Config.MaxBruteForceTxns)
        continue;
      bool Prod = Production.isConsistent(H);
      bool RefV = Reference.isConsistent(H);
      if (Prod != RefV) {
        Disagreement D = MakeDisagreement(
            Disagreement::Kind::CheckerVerdictMismatch,
            std::string("mixed saturation says ") +
                (Prod ? "consistent" : "inconsistent") +
                ", per-transaction brute force says " +
                (RefV ? "consistent" : "inconsistent") + " under mix(" +
                Resolved.str() + ")");
        D.Culprit = H;
        D.ProductionVerdict = Prod;
        D.ReferenceVerdict = RefV;
        Out.push_back(std::move(D));
      } else if (!RefV) {
        Disagreement D = MakeDisagreement(
            Disagreement::Kind::ExplorerSetMismatch,
            "mixed-base output violates its own base assignment mix(" +
                Resolved.str() + ") per the brute-force reference");
        D.Culprit = H;
        Out.push_back(std::move(D));
      }
    }
  }
}

std::vector<Disagreement> DifferentialOracle::checkProgram(
    const Program &P, const std::vector<IsolationLevel> &SessionLevels) const {
  std::vector<Disagreement> Out;

  // Mixed-isolation semantics: run the explorers with the sampled mix as
  // a true per-session base assignment (not just a narrowed sweep).
  if (Config.DiffMixedSemantics && !SessionLevels.empty())
    checkMixedSemantics(P, SessionLevels, Out);

  // A per-session isolation-level mix narrows the sweep: only the named
  // levels (causally-extensible ones as bases, all of them as verdict
  // levels) are exercised for this case.
  std::vector<IsolationLevel> Bases = Config.BaseLevels;
  std::vector<IsolationLevel> Verdicts = Config.VerdictLevels;
  if (!SessionLevels.empty()) {
    Bases.clear();
    Verdicts.clear();
    for (IsolationLevel L : SessionLevels) {
      if (isPrefixClosedCausallyExtensible(L) &&
          L != IsolationLevel::Trivial &&
          std::find(Bases.begin(), Bases.end(), L) == Bases.end())
        Bases.push_back(L);
      if (L != IsolationLevel::Trivial &&
          std::find(Verdicts.begin(), Verdicts.end(), L) == Verdicts.end())
        Verdicts.push_back(L);
    }
    if (Bases.empty())
      Bases.push_back(IsolationLevel::CausalConsistency);
  }

  std::vector<History> CcOutputs;
  for (IsolationLevel Base : Bases) {
    assert(isPrefixClosedCausallyExtensible(Base) &&
           "explore-ce base must be causally extensible");
    ExplorerConfig Recursive = ExplorerConfig::exploreCE(Base);
    // Abort oversized enumerations at the cap instead of paying for the
    // full (possibly combinatorial) set only to discard it. Without a
    // filter, outputs are exactly end states, so the cap is precise; the
    // iterative/parallel legs inherit it but never trigger it (they only
    // run when the recursive set stayed under the cap).
    if (Config.MaxHistoriesPerCase)
      Recursive.MaxEndStates = Config.MaxHistoriesPerCase + 1;
    EnumerationResult Ref = enumerateHistories(P, Recursive);
    if (Config.MaxHistoriesPerCase &&
        (Ref.Stats.HitEndStateCap ||
         Ref.Histories.size() > Config.MaxHistoriesPerCase))
      continue; // This base is too large to diff affordably; later
                // (stronger, smaller) bases still get checked, and an
                // oversized CC set leaves CcOutputs empty, skipping the
                // star/per-history phases.
    auto RefKeys = keyMultiset(Ref.Histories);

    if (Base == IsolationLevel::CausalConsistency)
      CcOutputs = Ref.Histories;

    if (Config.DiffExplorers) {
      // Strong optimality: the recursive driver must not emit duplicates.
      for (const auto &[Key, N] : RefKeys) {
        if (N == 1)
          continue;
        Disagreement D;
        D.K = Disagreement::Kind::DuplicateOutput;
        D.Level = Base;
        for (const History &H : Ref.Histories)
          if (H.canonicalKey() == Key) {
            D.Culprit = H;
            break;
          }
        D.Detail = "recursive explorer emitted one history " +
                   std::to_string(N) + " times under " +
                   isolationLevelName(Base);
        Out.push_back(std::move(D));
        break; // One duplicate report per base is plenty.
      }

      ExplorerConfig Iterative = Recursive;
      Iterative.Iterative = true;
      auto IterKeys = keyMultiset(enumerateHistories(P, Iterative).Histories);
      if (IterKeys != RefKeys) {
        Disagreement D;
        D.K = Disagreement::Kind::ExplorerSetMismatch;
        D.Level = Base;
        D.Detail = "iterative vs recursive under " +
                   std::string(isolationLevelName(Base)) + ": " +
                   diffSummary(IterKeys, RefKeys, "iterative", "recursive");
        Out.push_back(std::move(D));
      }

      if (Config.Threads > 1) {
        ExplorerConfig Par = Recursive;
        Par.Threads = Config.Threads;
        std::vector<History> ParHistories;
        ParallelExplorer E(P, Par);
        E.run([&](const History &H) { ParHistories.push_back(H); });
        auto ParKeys = keyMultiset(ParHistories);
        if (ParKeys != RefKeys) {
          Disagreement D;
          D.K = Disagreement::Kind::ExplorerSetMismatch;
          D.Level = Base;
          D.Detail = "parallel(" + std::to_string(Config.Threads) +
                     ") vs recursive under " + isolationLevelName(Base) +
                     ": " + diffSummary(ParKeys, RefKeys, "parallel",
                                        "recursive");
          Out.push_back(std::move(D));
        }
      }
    }

    if (Config.DiffDedup) {
      // Exact mode has nothing to skip on a strongly-optimal run (no two
      // WorkItems of one exploration are identical), so its output
      // multiset must match the reference verbatim.
      // Both dedup legs run with DedupVerifyCarried: every probe's O(Δ)
      // carried fingerprint is re-derived from scratch and disagreements
      // are counted — so this optimized fuzzing leg has the same teeth as
      // the debug-build assert at the engine's probe site.
      ExplorerConfig Exact = Recursive;
      Exact.Dedup = DedupMode::Exact;
      Exact.DedupVerifyCarried = true;
      EnumerationResult ExactRes = enumerateHistories(P, Exact);
      auto ExactKeys = keyMultiset(ExactRes.Histories);
      if (ExactKeys != RefKeys) {
        Disagreement D;
        D.K = Disagreement::Kind::DedupVerdictMismatch;
        D.Level = Base;
        D.Detail = "dedup=exact vs dedup=off under " +
                   std::string(isolationLevelName(Base)) + ": " +
                   diffSummary(ExactKeys, RefKeys, "exact", "off");
        Out.push_back(std::move(D));
      }
      if (ExactRes.Stats.DedupFpMismatches != 0) {
        Disagreement D;
        D.K = Disagreement::Kind::CarriedFingerprintMismatch;
        D.Level = Base;
        D.Detail = "dedup=exact under " +
                   std::string(isolationLevelName(Base)) + ": " +
                   std::to_string(ExactRes.Stats.DedupFpMismatches) +
                   " carried fingerprints differ from the from-scratch "
                   "fingerprint";
        Out.push_back(std::move(D));
      }

      // Symmetry mode may drop renaming-isomorphic histories but must
      // never invent one (sub-multiset of the reference) and must reach
      // the same violation verdict at every swept level. Deliberately the
      // unmutated production checkers on both sides (mirroring the
      // incremental leg): this leg guards dedup itself, not the axioms.
      ExplorerConfig Sym = Recursive;
      Sym.Dedup = DedupMode::Symmetry;
      Sym.DedupVerifyCarried = true;
      EnumerationResult SymRes = enumerateHistories(P, Sym);
      std::vector<History> SymHistories = std::move(SymRes.Histories);
      if (SymRes.Stats.DedupFpMismatches != 0) {
        Disagreement D;
        D.K = Disagreement::Kind::CarriedFingerprintMismatch;
        D.Level = Base;
        D.Detail = "dedup=symmetry under " +
                   std::string(isolationLevelName(Base)) + ": " +
                   std::to_string(SymRes.Stats.DedupFpMismatches) +
                   " carried fingerprints differ from the from-scratch "
                   "fingerprint";
        Out.push_back(std::move(D));
      }
      auto SymKeys = keyMultiset(SymHistories);
      bool Included = true;
      for (const auto &[Key, N] : SymKeys) {
        auto It = RefKeys.find(Key);
        if (It == RefKeys.end() || It->second < N) {
          Included = false;
          break;
        }
      }
      if (!Included) {
        Disagreement D;
        D.K = Disagreement::Kind::DedupVerdictMismatch;
        D.Level = Base;
        D.Detail = "dedup=symmetry emitted histories outside the dedup=off "
                   "set under " +
                   std::string(isolationLevelName(Base)) + ": " +
                   diffSummary(SymKeys, RefKeys, "symmetry", "off");
        Out.push_back(std::move(D));
      } else {
        for (IsolationLevel L : Verdicts) {
          auto HasViolation = [&](const std::vector<History> &Hs) {
            for (const History &H : Hs)
              if (!isConsistent(H, L))
                return true;
            return false;
          };
          bool RefViolates = HasViolation(Ref.Histories);
          bool SymViolates = HasViolation(SymHistories);
          if (RefViolates != SymViolates) {
            Disagreement D;
            D.K = Disagreement::Kind::DedupVerdictMismatch;
            D.Level = L;
            D.Detail =
                "dedup=symmetry under " +
                std::string(isolationLevelName(Base)) + " changes the " +
                isolationLevelName(L) + " violation verdict (off: " +
                (RefViolates ? "violating" : "clean") + ", symmetry: " +
                (SymViolates ? "violating" : "clean") + ")";
            Out.push_back(std::move(D));
          }
        }
      }
    }
  }

  // explore-ce*(CC, I) versus the CC set re-filtered by the production
  // checker of I. Runs only when CC was part of the sweep.
  if (Config.DiffStarFilters && !CcOutputs.empty()) {
    for (IsolationLevel Filter : {IsolationLevel::SnapshotIsolation,
                                  IsolationLevel::Serializability}) {
      if (std::find(Verdicts.begin(), Verdicts.end(), Filter) ==
          Verdicts.end())
        continue;
      std::vector<History> Expected;
      for (const History &H : CcOutputs)
        if (mutatedIsConsistent(H, Filter, Config.Mutation))
          Expected.push_back(H);
      auto Star = keyMultiset(
          enumerateHistories(
              P, ExplorerConfig::exploreCEStar(
                     IsolationLevel::CausalConsistency, Filter))
              .Histories);
      auto Want = keyMultiset(Expected);
      if (Star != Want) {
        Disagreement D;
        D.K = Disagreement::Kind::StarFilterMismatch;
        D.Level = Filter;
        D.Detail = std::string("explore-ce*(CC, ") +
                   isolationLevelName(Filter) +
                   ") vs re-filtered explore-ce(CC): " +
                   diffSummary(Star, Want, "star", "filtered");
        Out.push_back(std::move(D));
      }
    }
  }

  // Per-output-history verdict and witness cross-checks (over the
  // narrowed levels for mixed-level cases).
  if ((Config.CrossCheckVerdicts || Config.ValidateWitnesses) &&
      !CcOutputs.empty()) {
    unsigned Streamed = 0;
    for (const History &H : CcOutputs) {
      bool Stream = !Config.MaxStreamedHistoriesPerCase ||
                    Streamed < Config.MaxStreamedHistoriesPerCase;
      checkOneHistory(H, Verdicts, Out, Stream);
      Streamed += Stream;
      if (Out.size() >= 8)
        break; // Enough evidence for one case.
    }
  }

  return Out;
}
