//===- fuzz/ProgramGenerator.cpp - Seeded program/history generation ------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "fuzz/ProgramGenerator.h"

#include "sql/Table.h"

using namespace txdpor;
using namespace txdpor::fuzz;

History txdpor::fuzz::generateHistory(Rng &R, const HistoryShape &Shape) {
  History H = History::makeInitial(Shape.NumVars);

  // Interleave transaction creation across sessions in a random order so
  // block order is not simply session-major.
  std::vector<uint32_t> NextIndex(Shape.NumSessions, 0);
  unsigned Remaining = Shape.NumSessions * Shape.TxnsPerSession;
  Value NextValue = 1;

  while (Remaining > 0) {
    uint32_t S;
    do {
      S = static_cast<uint32_t>(R.nextBelow(Shape.NumSessions));
    } while (NextIndex[S] >= Shape.TxnsPerSession);
    unsigned Idx = H.beginTxn({S, NextIndex[S]++});
    --Remaining;

    unsigned NumOps =
        1 + static_cast<unsigned>(R.nextBelow(Shape.MaxOpsPerTxn));
    for (unsigned Op = 0; Op != NumOps; ++Op) {
      VarId X = static_cast<VarId>(R.nextBelow(Shape.NumVars));
      if (R.chance(1, 2)) {
        H.appendEvent(Idx, Event::makeWrite(X, NextValue++));
        continue;
      }
      H.appendEvent(Idx, Event::makeRead(X));
      uint32_t Pos = static_cast<uint32_t>(H.txn(Idx).size()) - 1;
      if (!H.txn(Idx).isExternalRead(Pos))
        continue; // Read-local; no wr dependency.
      // Pick any earlier committed writer of X (init always qualifies).
      std::vector<unsigned> Writers;
      for (unsigned W = 0; W != Idx; ++W)
        if (H.txn(W).isCommitted() && H.txn(W).writesVar(X))
          Writers.push_back(W);
      assert(!Writers.empty() && "init always writes every variable");
      unsigned W = Writers[R.nextBelow(Writers.size())];
      H.setWriter(Idx, Pos, H.txn(W).uid());
    }
    if (R.chance(Shape.AbortPercent, 100))
      H.appendEvent(Idx, Event::makeAbort());
    else
      H.appendEvent(Idx, Event::makeCommit());
  }
  H.checkWellFormed();
  return H;
}

namespace {

/// Emits one SQL statement batch as the body of \p Txn: 1..MaxOpsPerTxn
/// statements drawn among INSERT / DELETE / SELECT-by-id / UPDATE-by-id /
/// full scan / UPDATE-where.
void emitSqlTxn(Rng &R, Table &Tbl, ProgramBuilder::TxnHandle &Txn,
                const ProgramShape &Shape, Value &NextValue) {
  unsigned NumStmts =
      1 + static_cast<unsigned>(R.nextBelow(Shape.MaxOpsPerTxn));
  for (unsigned Stmt = 0; Stmt != NumStmts; ++Stmt) {
    unsigned Row = static_cast<unsigned>(R.nextBelow(Tbl.maxRows()));
    unsigned Col = static_cast<unsigned>(R.nextBelow(Tbl.numColumns()));
    std::string ColName = "c" + std::to_string(Col);
    switch (R.nextBelow(6)) {
    case 0: {
      std::vector<ExprRef> Values;
      for (unsigned C = 0; C != Tbl.numColumns(); ++C)
        Values.push_back(ExprRef(NextValue++));
      Tbl.insert(Txn, Row, Values);
      break;
    }
    case 1:
      Tbl.remove(Txn, Row);
      break;
    case 2:
      Tbl.selectById(Txn, Row, "q" + std::to_string(Stmt));
      break;
    case 3:
      Tbl.updateById(Txn, Row, ColName, ExprRef(NextValue++));
      break;
    case 4:
      Tbl.scan(Txn, "s" + std::to_string(Stmt));
      break;
    default:
      Tbl.updateWhere(
          Txn, ColName, ExprRef(NextValue++),
          [&](std::function<ExprRef(const std::string &)> Cell) {
            return eq(Cell(ColName), 0);
          });
      break;
    }
  }
}

} // namespace

Program txdpor::fuzz::generateProgram(Rng &R, const ProgramShape &Shape) {
  ProgramBuilder B;
  std::vector<VarId> Vars;
  for (unsigned V = 0; V != Shape.NumVars; ++V)
    Vars.push_back(B.var("x" + std::to_string(V)));

  // The table (and its set/cell variables) exists only when the SQL knob
  // is on: shapes without it stay bit-compatible with the legacy
  // test-local generator.
  std::optional<Table> Tbl;
  if (Shape.SqlTxnPercent > 0) {
    std::vector<std::string> Columns;
    for (unsigned C = 0; C != Shape.SqlColumns; ++C)
      Columns.push_back("c" + std::to_string(C));
    Tbl.emplace(B, "t", Shape.SqlMaxRows, Columns);
  }

  Value NextValue = 1;
  for (unsigned S = 0; S != Shape.NumSessions; ++S) {
    for (unsigned T = 0; T != Shape.TxnsPerSession; ++T) {
      auto Txn = B.beginTxn(S);
      if (Tbl && R.chance(Shape.SqlTxnPercent, 100)) {
        emitSqlTxn(R, *Tbl, Txn, Shape, NextValue);
        continue;
      }
      unsigned NumOps =
          1 + static_cast<unsigned>(R.nextBelow(Shape.MaxOpsPerTxn));
      unsigned NumReads = 0;
      for (unsigned Op = 0; Op != NumOps; ++Op) {
        VarId X = Vars[R.nextBelow(Vars.size())];
        switch (R.nextBelow(4)) {
        case 0:
          Txn.write(X, NextValue++);
          break;
        case 1: {
          // Data-dependent write: propagate a read value.
          if (NumReads == 0) {
            Txn.write(X, NextValue++);
            break;
          }
          std::string Src = "r" + std::to_string(R.nextBelow(NumReads));
          Txn.write(X, Txn.local(Src) + 1);
          break;
        }
        case 2:
          if (Shape.WithGuards && NumReads > 0) {
            std::string Src = "r" + std::to_string(R.nextBelow(NumReads));
            Txn.write(X, NextValue++, eq(Txn.local(Src), 0));
            break;
          }
          [[fallthrough]];
        default:
          Txn.read("r" + std::to_string(NumReads++), X);
          break;
        }
      }
      if (Shape.WithAborts && NumReads > 0 && R.chance(1, 5)) {
        std::string Src = "r" + std::to_string(R.nextBelow(NumReads));
        Txn.abort(eq(Txn.local(Src), 0));
      }
    }
  }
  return B.build();
}

GeneratedCase txdpor::fuzz::generateCase(Rng &R, const ProgramShape &Shape) {
  GeneratedCase Case;
  Case.Prog = generateProgram(R, Shape);
  if (Shape.LevelMixPercent > 0 && R.chance(Shape.LevelMixPercent, 100)) {
    for (unsigned S = 0; S != Shape.NumSessions; ++S)
      Case.SessionLevels.push_back(
          AllIsolationLevels[R.nextBelow(AllIsolationLevels.size())]);
  }
  return Case;
}

std::optional<ProgramShape>
txdpor::fuzz::programShapeByName(const std::string &Name) {
  ProgramShape Shape; // "default"
  if (Name == "default")
    return Shape;
  if (Name == "tiny") {
    Shape.TxnsPerSession = 1;
    Shape.WithGuards = false;
    Shape.WithAborts = false;
    return Shape;
  }
  if (Name == "wide") {
    Shape.NumSessions = 3;
    Shape.NumVars = 3;
    return Shape;
  }
  if (Name == "deep") {
    Shape.TxnsPerSession = 3;
    Shape.MaxOpsPerTxn = 3;
    return Shape;
  }
  if (Name == "sql") {
    Shape.SqlTxnPercent = 60;
    return Shape;
  }
  if (Name == "mixed") {
    Shape.LevelMixPercent = 100;
    return Shape;
  }
  return std::nullopt;
}

std::vector<std::string> txdpor::fuzz::programShapeNames() {
  return {"tiny", "default", "wide", "deep", "sql", "mixed"};
}

HistoryShape txdpor::fuzz::historyShapeFor(const ProgramShape &Shape) {
  HistoryShape H;
  H.NumVars = Shape.NumVars;
  H.NumSessions = Shape.NumSessions;
  H.TxnsPerSession = Shape.TxnsPerSession;
  H.MaxOpsPerTxn = Shape.MaxOpsPerTxn + 1;
  return H;
}
