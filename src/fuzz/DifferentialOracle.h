//===- fuzz/DifferentialOracle.h - Cross-checking explorers and checkers --===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's oracle: runs one generated workload through redundant
/// implementations that must agree, and reports every disagreement.
///
/// For a *program* the oracle diffs, per base level,
///
///   * the recursive, iterative (§7.1) and parallel explorers — identical
///     canonical output-history multisets (soundness/completeness of each
///     driver relative to the others) and no duplicates (strong
///     optimality, Thm. 5.1);
///   * explore-ce*(CC, I) against the explore-ce(CC) set re-filtered by
///     the production checker of I (Cor. 6.2 plumbing).
///
/// For a *history* (an explorer output or a raw generated history) it
/// diffs, per isolation level, the production checker verdict
/// (SaturationChecker / SnapshotIsolationChecker / SerializabilityChecker)
/// against BruteForceChecker — the literal Def. 2.2 enumeration — and
/// validates the commit-order certificate of consistency/Witness.h. It
/// also serializes eligible histories to traces and re-checks them with
/// the windowed StreamingChecker at several budgets (the streaming leg).
///
/// CheckerMutation is a test-only hook that deliberately weakens an axiom
/// of the production side; the mutation-smoke test asserts the fuzzer
/// catches each mutation within a bounded seed budget (a live check that
/// the oracle has teeth). Production code never enables a mutation.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_FUZZ_DIFFERENTIALORACLE_H
#define TXDPOR_FUZZ_DIFFERENTIALORACLE_H

#include "consistency/IsolationLevel.h"
#include "history/History.h"
#include "program/Program.h"
#include "support/Deadline.h"

#include <optional>
#include <string>
#include <vector>

namespace txdpor {
namespace fuzz {

/// Test-only axiom weakenings injected into the production side of the
/// verdict cross-check (see mutatedIsConsistent).
enum class CheckerMutation : uint8_t {
  None,
  /// Decide CC with RA's axiom premise (so ∪ wr instead of its transitive
  /// closure) — drops the causal saturation step, admitting histories
  /// with two-hop causality violations.
  WeakCausalPremise,
  /// Decide RA with RC's event-granular premise — forgets that an RA
  /// read-set must be atomic across variables.
  WeakAtomicVisibility,
};

/// Parses "none" / "weak-cc" / "weak-ra".
std::optional<CheckerMutation> checkerMutationByName(const std::string &Name);
const char *checkerMutationName(CheckerMutation M);

/// The production-side verdict with \p M applied (the identity for
/// CheckerMutation::None).
bool mutatedIsConsistent(const History &H, IsolationLevel Level,
                         CheckerMutation M);

/// One observed disagreement between redundant implementations.
struct Disagreement {
  enum class Kind : uint8_t {
    /// The iterative or parallel explorer produced a different canonical
    /// output multiset than the recursive explorer.
    ExplorerSetMismatch,
    /// An explorer emitted the same history twice (optimality breach).
    DuplicateOutput,
    /// explore-ce*(CC, I) disagrees with the re-filtered explore-ce(CC)
    /// set.
    StarFilterMismatch,
    /// Production checker verdict differs from the brute-force Def. 2.2
    /// reference on one history.
    CheckerVerdictMismatch,
    /// findCommitOrder disagrees with the reference verdict, or its
    /// certificate fails validateCommitOrder.
    WitnessMismatch,
    /// The incremental ConstraintState verdict differs from the scratch
    /// SaturationChecker / MixedSaturationChecker on one history — the
    /// leg that guards the carried-state optimization of the engine.
    IncrementalVerdictMismatch,
    /// The windowed streaming checker, fed the history serialized to a
    /// trace and re-parsed, differs from the full-history verdict at some
    /// window budget (stale-read refusals excepted) — the leg that
    /// guards eviction soundness/completeness and the trace round-trip.
    StreamingVerdictMismatch,
    /// A dedup-enabled exploration broke its contract against the
    /// dedup-off reference: exact mode must reproduce the output multiset
    /// verbatim (optimal runs contain no duplicate items), symmetry mode
    /// must emit a sub-multiset with identical per-level
    /// violation-existence verdicts — the leg that guards the subtree
    /// memoization of core/Dedup.h.
    DedupVerdictMismatch,
    /// An O(Δ) swap-child rebuild (copy the cached prefix state, replay
    /// only the changed blocks) is not equivalentTo the bulk-constructed
    /// ConstraintState of the same swapped history — the leg that guards
    /// the engine's incremental fan-out rebuild.
    IncrementalSwapStateMismatch,
    /// A dedup-enabled exploration run under DedupVerifyCarried observed
    /// carried-fingerprint/from-scratch disagreements
    /// (ExplorerStats::DedupFpMismatches != 0) — the leg that guards the
    /// O(Δ) fingerprint maintenance of core/Dedup.h in optimized builds.
    CarriedFingerprintMismatch,
  };

  Kind K = Kind::CheckerVerdictMismatch;
  IsolationLevel Level = IsolationLevel::CausalConsistency;
  /// Per-session base assignment of the mixed-semantics legs (explorer
  /// diffs and verdict cross-checks under a mixed base); empty for the
  /// classic uniform legs, where Level alone identifies the sweep point.
  std::vector<IsolationLevel> MixLevels;
  std::string Detail;
  /// The offending history for history-scoped kinds (verdict/witness and
  /// duplicate kinds); unset for whole-set mismatches.
  std::optional<History> Culprit;
  /// Verdicts for CheckerVerdictMismatch / WitnessMismatch.
  bool ProductionVerdict = false;
  bool ReferenceVerdict = false;
};

/// Stable kebab-case name used in repro files and log lines.
const char *disagreementKindName(Disagreement::Kind K);
std::optional<Disagreement::Kind>
disagreementKindByName(const std::string &Name);

/// Knobs of one oracle instance.
struct OracleConfig {
  /// Base levels of the explorer diff (must be causally extensible).
  std::vector<IsolationLevel> BaseLevels = {
      IsolationLevel::ReadCommitted, IsolationLevel::ReadAtomic,
      IsolationLevel::CausalConsistency};
  /// Levels of the per-history verdict cross-check.
  std::vector<IsolationLevel> VerdictLevels = {
      IsolationLevel::ReadCommitted, IsolationLevel::ReadAtomic,
      IsolationLevel::CausalConsistency, IsolationLevel::SnapshotIsolation,
      IsolationLevel::Serializability};
  bool DiffExplorers = true;
  bool DiffStarFilters = true;
  bool CrossCheckVerdicts = true;
  bool ValidateWitnesses = true;
  /// Diff the incremental ConstraintState (the engine's carried commit
  /// test) against the scratch saturation checkers on every checked
  /// history that satisfies the ordered-history discipline the state
  /// requires. Deliberately *not* subject to Mutation: this leg guards
  /// the incremental/scratch equivalence itself, continuously, in the
  /// nightly soak.
  bool CrossCheckIncremental = true;
  /// Mixed-semantics legs for cases carrying a per-session level mix:
  /// run the explorers with the mix as the *base assignment* (per-session
  /// ValidWrites), diff the three drivers, and cross-check every mixed
  /// output's MixedSaturationChecker verdict against
  /// BruteForceChecker(assignment) — the Def. 2.2 reference with
  /// per-transaction commit tests. Sampled levels outside the
  /// causally-extensible chain are clamped to CC first (SI/SER cannot
  /// drive ValidWrites), identically on both sides of the cross-check.
  bool DiffMixedSemantics = true;
  /// Serialize every checked history to a jsonl trace, re-parse it and
  /// stream it through StreamingChecker at each StreamingWindows budget,
  /// diffing the verdict against the full-history production verdict
  /// (which a CheckerMutation weakens — so the mutation smoke also has
  /// streaming teeth). Stale-read refusals are legitimate under a small
  /// budget and skip the comparison; malformed rejections of a
  /// round-tripped trace always count as disagreements.
  bool DiffStreaming = true;
  /// Re-run each in-budget base with --dedup=exact (multiset equality
  /// with the reference — optimal runs have nothing to skip) and
  /// --dedup=symmetry (sub-multiset plus per-level violation-existence
  /// equality). Like CrossCheckIncremental, deliberately *not* subject to
  /// Mutation: the leg guards the dedup/reference equivalence itself.
  bool DiffDedup = true;
  /// Window budgets of the streaming leg (0 = never evict).
  std::vector<unsigned> StreamingWindows = {0, 4, 8};
  /// At most this many explorer outputs per program case go through the
  /// streaming leg (direct history cases always do). Serializing and
  /// re-streaming all 256 outputs of a large case at every budget would
  /// dominate the minimizer, which re-runs the oracle per shrink
  /// candidate. 0 = unlimited.
  unsigned MaxStreamedHistoriesPerCase = 4;
  /// Worker threads of the parallel leg (<= 1 skips it).
  unsigned Threads = 2;
  /// A base level whose output set exceeds this is skipped (its explorer
  /// diff would be unaffordable); when the CC set itself is oversized,
  /// the star-filter and per-history checks are skipped with it.
  /// 0 = unlimited.
  uint64_t MaxHistoriesPerCase = 256;
  /// Histories with more transactions than this skip the brute-force
  /// cross-check (the reference enumerates commit orders).
  unsigned MaxBruteForceTxns = 9;
  /// Test-only axiom weakening of the production side.
  CheckerMutation Mutation = CheckerMutation::None;
};

/// Stateless differential oracle over one configuration.
class DifferentialOracle {
public:
  explicit DifferentialOracle(OracleConfig Config)
      : Config(std::move(Config)) {}

  const OracleConfig &config() const { return Config; }

  /// Cross-checks every implementation pair on \p P. A non-empty
  /// \p SessionLevels (a generated per-session isolation-level mix)
  /// narrows the sweep to the levels it names.
  std::vector<Disagreement>
  checkProgram(const Program &P,
               const std::vector<IsolationLevel> &SessionLevels = {}) const;

  /// Cross-checks the consistency checkers and witness machinery on one
  /// history.
  std::vector<Disagreement> checkHistory(const History &H) const;

private:
  /// \p Stream gates the streaming leg for this history (checkProgram
  /// caps how many outputs per case pay for it).
  void checkOneHistory(const History &H,
                       const std::vector<IsolationLevel> &Levels,
                       std::vector<Disagreement> &Out,
                       bool Stream = true) const;
  void checkMixedSemantics(const Program &P,
                           const std::vector<IsolationLevel> &SessionLevels,
                           std::vector<Disagreement> &Out) const;

  OracleConfig Config;
};

} // namespace fuzz
} // namespace txdpor

#endif // TXDPOR_FUZZ_DIFFERENTIALORACLE_H
