//===- fuzz/Repro.cpp - Self-contained litmus repro files -----------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Repro.h"

#include "consistency/LevelParse.h"
#include "history/Serialize.h"
#include "support/Parse.h"

#include <sstream>

using namespace txdpor;
using namespace txdpor::fuzz;

//===----------------------------------------------------------------------===//
// Program text: expressions
//===----------------------------------------------------------------------===//

namespace {

const char *binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "add";
  case BinaryOp::Sub:
    return "sub";
  case BinaryOp::Mul:
    return "mul";
  case BinaryOp::Eq:
    return "eq";
  case BinaryOp::Ne:
    return "ne";
  case BinaryOp::Lt:
    return "lt";
  case BinaryOp::Le:
    return "le";
  case BinaryOp::Gt:
    return "gt";
  case BinaryOp::Ge:
    return "ge";
  case BinaryOp::And:
    return "and";
  case BinaryOp::Or:
    return "or";
  case BinaryOp::BitAnd:
    return "bitand";
  case BinaryOp::BitOr:
    return "bitor";
  }
  return "?";
}

std::optional<BinaryOp> binaryOpByName(const std::string &Name) {
  for (BinaryOp Op :
       {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Eq,
        BinaryOp::Ne, BinaryOp::Lt, BinaryOp::Le, BinaryOp::Gt, BinaryOp::Ge,
        BinaryOp::And, BinaryOp::Or, BinaryOp::BitAnd, BinaryOp::BitOr})
    if (Name == binaryOpName(Op))
      return Op;
  return std::nullopt;
}

void writeExpr(std::ostream &OS, const Expr::NodeRef &E,
               const Transaction &Txn) {
  switch (E->kind()) {
  case ExprKind::Const:
    OS << "(const " << E->constVal() << ')';
    return;
  case ExprKind::Local:
    OS << "(local " << Txn.localName(E->localId()) << ')';
    return;
  case ExprKind::Unary:
    OS << '(' << (E->unaryOp() == UnaryOp::Not ? "not" : "neg") << ' ';
    writeExpr(OS, E->lhs(), Txn);
    OS << ')';
    return;
  case ExprKind::Binary:
    OS << '(' << binaryOpName(E->binaryOp()) << ' ';
    writeExpr(OS, E->lhs(), Txn);
    OS << ' ';
    writeExpr(OS, E->rhs(), Txn);
    OS << ')';
    return;
  }
}


/// Splits a line into tokens; '(' and ')' are tokens of their own.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::string Current;
  for (char C : Line) {
    if (C == '(' || C == ')') {
      if (!Current.empty()) {
        Tokens.push_back(Current);
        Current.clear();
      }
      Tokens.push_back(std::string(1, C));
    } else if (C == ' ' || C == '\t') {
      if (!Current.empty()) {
        Tokens.push_back(Current);
        Current.clear();
      }
    } else {
      Current.push_back(C);
    }
  }
  if (!Current.empty())
    Tokens.push_back(Current);
  return Tokens;
}

/// Recursive-descent s-expression parser over tokenize() output.
/// Locals are interned on sight through \p T.
std::optional<ExprRef> parseExpr(const std::vector<std::string> &Tokens,
                                 size_t &Pos, ProgramBuilder::TxnHandle &T,
                                 std::string &Error) {
  auto Fail = [&](const std::string &Msg) -> std::optional<ExprRef> {
    Error = Msg;
    return std::nullopt;
  };
  if (Pos >= Tokens.size() || Tokens[Pos] != "(")
    return Fail("expected '(' in expression");
  ++Pos;
  if (Pos >= Tokens.size())
    return Fail("unterminated expression");
  std::string Head = Tokens[Pos++];
  ExprRef Result;
  if (Head == "const") {
    if (Pos >= Tokens.size())
      return Fail("const needs a value");
    std::optional<int64_t> V = parseInt(Tokens[Pos++]);
    if (!V)
      return Fail("bad const value '" + Tokens[Pos - 1] + "'");
    Result = ExprRef(Expr::makeConst(*V));
  } else if (Head == "local") {
    if (Pos >= Tokens.size())
      return Fail("local needs a name");
    Result = ExprRef(Expr::makeLocal(T.internLocal(Tokens[Pos++])));
  } else if (Head == "not" || Head == "neg") {
    std::optional<ExprRef> Operand = parseExpr(Tokens, Pos, T, Error);
    if (!Operand)
      return std::nullopt;
    Result = ExprRef(Expr::makeUnary(
        Head == "not" ? UnaryOp::Not : UnaryOp::Neg, Operand->Node));
  } else if (std::optional<BinaryOp> Op = binaryOpByName(Head)) {
    std::optional<ExprRef> Lhs = parseExpr(Tokens, Pos, T, Error);
    if (!Lhs)
      return std::nullopt;
    std::optional<ExprRef> Rhs = parseExpr(Tokens, Pos, T, Error);
    if (!Rhs)
      return std::nullopt;
    Result = ExprRef(Expr::makeBinary(*Op, Lhs->Node, Rhs->Node));
  } else {
    return Fail("unknown expression head '" + Head + "'");
  }
  if (Pos >= Tokens.size() || Tokens[Pos] != ")")
    return Fail("expected ')' in expression");
  ++Pos;
  return Result;
}

} // namespace

//===----------------------------------------------------------------------===//
// Program text: programs
//===----------------------------------------------------------------------===//

std::string txdpor::fuzz::writeProgramText(const Program &P) {
  std::ostringstream OS;
  OS << "vars";
  for (VarId V = 0; V != P.numVars(); ++V)
    OS << ' ' << P.varName(V);
  OS << '\n';
  for (unsigned S = 0; S != P.numSessions(); ++S) {
    // A program-declared session level rides on the session line
    // ("session 0 @CC"); programs without declarations round-trip to the
    // legacy spelling byte-for-byte.
    OS << "session " << S;
    if (P.levels().hasExplicit())
      OS << " @" << isolationLevelName(P.levels().levelFor(S));
    OS << '\n';
    for (unsigned T = 0; T != P.numTxns(S); ++T) {
      const Transaction &Txn = P.txn({S, T});
      OS << "txn";
      if (!Txn.name().empty())
        OS << ' ' << Txn.name();
      OS << '\n';
      for (const Instr &I : Txn.body()) {
        OS << "  ";
        switch (I.Kind) {
        case InstrKind::Read:
          OS << "read " << Txn.localName(I.Target) << ' '
             << P.varName(I.Var);
          break;
        case InstrKind::Write:
          OS << "write " << P.varName(I.Var) << ' ';
          writeExpr(OS, I.Rhs.Node, Txn);
          break;
        case InstrKind::Assign:
          OS << "assign " << Txn.localName(I.Target) << ' ';
          writeExpr(OS, I.Rhs.Node, Txn);
          break;
        case InstrKind::Abort:
          OS << "abort";
          break;
        }
        if (I.Guard.valid()) {
          OS << " if ";
          writeExpr(OS, I.Guard.Node, Txn);
        }
        OS << '\n';
      }
    }
  }
  return OS.str();
}

std::optional<Program> txdpor::fuzz::parseProgramText(const std::string &Text,
                                                      std::string *Error) {
  auto Fail = [&](unsigned LineNo,
                  const std::string &Msg) -> std::optional<Program> {
    if (Error)
      *Error = "line " + std::to_string(LineNo) + ": " + Msg;
    return std::nullopt;
  };

  ProgramBuilder B;
  std::unordered_map<std::string, VarId> Vars;
  std::optional<ProgramBuilder::TxnHandle> Txn;
  unsigned CurrentSession = 0;
  bool SawSession = false, SawVars = false;

  std::istringstream IS(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(IS, Line)) {
    ++LineNo;
    std::vector<std::string> Tokens = tokenize(Line);
    if (Tokens.empty() || Tokens.front().front() == '#')
      continue;
    const std::string &Head = Tokens.front();

    if (Head == "vars") {
      for (size_t I = 1; I != Tokens.size(); ++I)
        Vars.emplace(Tokens[I], B.var(Tokens[I]));
      SawVars = true;
      continue;
    }
    if (Head == "session") {
      std::optional<uint64_t> N =
          Tokens.size() >= 2 ? parseUInt(Tokens[1]) : std::nullopt;
      if (!N)
        return Fail(LineNo, "session needs a number");
      // ProgramBuilder creates sessions up to the highest number seen, so
      // bound it: a hand-edited "session 4000000000" must be a
      // diagnostic, not a multi-gigabyte allocation.
      if (*N > 4096)
        return Fail(LineNo, "session number out of range");
      CurrentSession = static_cast<unsigned>(*N);
      // Optional "@LEVEL": the session's declared isolation level.
      if (Tokens.size() >= 3) {
        if (Tokens.size() > 3 || Tokens[2].size() < 2 ||
            Tokens[2][0] != '@')
          return Fail(LineNo, "trailing tokens after session");
        std::optional<IsolationLevel> L =
            isolationLevelByName(Tokens[2].substr(1));
        if (!L)
          return Fail(LineNo, "unknown session level '" + Tokens[2] + "'");
        // Program-declared levels feed the explorer's *base* assignment,
        // which must stay in the causally-extensible chain (§5) — reject
        // hand-edited "@SI"/"@SER" with a diagnostic instead of letting
        // them reach the engine's assert.
        if (!isPrefixClosedCausallyExtensible(*L))
          return Fail(LineNo, "session level must be one of true, RC, RA, "
                              "CC (§5)");
        B.sessionLevel(CurrentSession, *L);
      }
      SawSession = true;
      Txn.reset();
      continue;
    }
    if (Head == "txn") {
      if (!SawSession)
        return Fail(LineNo, "txn outside a session");
      Txn.emplace(
          B.beginTxn(CurrentSession, Tokens.size() > 1 ? Tokens[1] : ""));
      continue;
    }

    // Instruction lines.
    if (!Txn)
      return Fail(LineNo, "instruction outside a transaction");
    std::string ExprError;
    auto ParseGuard = [&](size_t &Pos) -> std::optional<ExprRef> {
      // Optional trailing " if <expr>"; returns an empty ExprRef when
      // absent, nullopt on parse failure.
      if (Pos >= Tokens.size())
        return ExprRef();
      if (Tokens[Pos] != "if") {
        ExprError = "trailing tokens after instruction";
        return std::nullopt;
      }
      ++Pos;
      return parseExpr(Tokens, Pos, *Txn, ExprError);
    };
    auto LookupVar = [&](const std::string &Name) -> std::optional<VarId> {
      auto It = Vars.find(Name);
      if (It == Vars.end())
        return std::nullopt;
      return It->second;
    };

    if (Head == "read") {
      if (Tokens.size() < 3)
        return Fail(LineNo, "read needs a local and a variable");
      std::optional<VarId> Var = LookupVar(Tokens[2]);
      if (!Var)
        return Fail(LineNo, "unknown variable '" + Tokens[2] + "'");
      size_t Pos = 3;
      std::optional<ExprRef> Guard = ParseGuard(Pos);
      if (!Guard)
        return Fail(LineNo, ExprError);
      Txn->read(Tokens[1], *Var, *Guard);
    } else if (Head == "write") {
      if (Tokens.size() < 3)
        return Fail(LineNo, "write needs a variable and an expression");
      std::optional<VarId> Var = LookupVar(Tokens[1]);
      if (!Var)
        return Fail(LineNo, "unknown variable '" + Tokens[1] + "'");
      size_t Pos = 2;
      std::optional<ExprRef> Rhs = parseExpr(Tokens, Pos, *Txn, ExprError);
      if (!Rhs)
        return Fail(LineNo, ExprError);
      std::optional<ExprRef> Guard = ParseGuard(Pos);
      if (!Guard)
        return Fail(LineNo, ExprError);
      Txn->write(*Var, *Rhs, *Guard);
    } else if (Head == "assign") {
      if (Tokens.size() < 3)
        return Fail(LineNo, "assign needs a local and an expression");
      size_t Pos = 2;
      std::optional<ExprRef> Rhs = parseExpr(Tokens, Pos, *Txn, ExprError);
      if (!Rhs)
        return Fail(LineNo, ExprError);
      std::optional<ExprRef> Guard = ParseGuard(Pos);
      if (!Guard)
        return Fail(LineNo, ExprError);
      Txn->assign(Tokens[1], *Rhs, *Guard);
    } else if (Head == "abort") {
      size_t Pos = 1;
      std::optional<ExprRef> Guard = ParseGuard(Pos);
      if (!Guard)
        return Fail(LineNo, ExprError);
      Txn->abort(*Guard);
    } else {
      return Fail(LineNo, "unknown directive '" + Head + "'");
    }
  }
  if (!SawVars)
    return Fail(LineNo, "missing vars line");
  return B.build();
}

//===----------------------------------------------------------------------===//
// Repro files
//===----------------------------------------------------------------------===//

std::string txdpor::fuzz::writeRepro(const Repro &R) {
  std::ostringstream OS;
  OS << "# txdpor fuzz repro v1\n";
  OS << "seed " << R.Seed << " case " << R.CaseIndex << '\n';
  OS << "kind " << disagreementKindName(R.Kind) << '\n';
  // The level line carries the sweep level and, for mixed-isolation
  // cases, the per-session assignment: "level CC S0=CC S1=RC".
  OS << "level " << isolationLevelName(R.Level);
  for (size_t S = 0; S != R.SessionLevels.size(); ++S)
    OS << " S" << S << '=' << isolationLevelName(R.SessionLevels[S]);
  OS << '\n';
  OS << "verdict production="
     << (R.ProductionVerdict ? "consistent" : "inconsistent")
     << " reference=" << (R.ReferenceVerdict ? "consistent" : "inconsistent")
     << '\n';
  if (!R.Detail.empty())
    OS << "detail " << R.Detail << '\n';
  if (R.Prog) {
    OS << "program {\n" << writeProgramText(*R.Prog) << "}\n";
  }
  if (R.Hist) {
    OS << "history {\n" << writeHistory(*R.Hist) << "}\n";
  }
  return OS.str();
}

std::optional<Repro> txdpor::fuzz::parseRepro(const std::string &Text,
                                              std::string *Error) {
  auto Fail = [&](const std::string &Msg) -> std::optional<Repro> {
    if (Error)
      *Error = Msg;
    return std::nullopt;
  };
  Repro R;
  std::istringstream IS(Text);
  std::string Line;
  bool SawKind = false;
  while (std::getline(IS, Line)) {
    std::vector<std::string> Tokens = tokenize(Line);
    if (Tokens.empty() || Tokens.front().front() == '#')
      continue;
    const std::string &Head = Tokens.front();
    if (Head == "seed") {
      std::optional<uint64_t> Seed =
          Tokens.size() >= 2 ? parseUInt(Tokens[1]) : std::nullopt;
      if (!Seed)
        return Fail("seed needs a number");
      R.Seed = *Seed;
      if (Tokens.size() >= 4 && Tokens[2] == "case") {
        std::optional<uint64_t> Case = parseUInt(Tokens[3]);
        if (!Case)
          return Fail("case needs a number");
        R.CaseIndex = *Case;
      }
    } else if (Head == "kind") {
      if (Tokens.size() < 2)
        return Fail("kind needs a value");
      std::optional<Disagreement::Kind> K = disagreementKindByName(Tokens[1]);
      if (!K)
        return Fail("unknown disagreement kind '" + Tokens[1] + "'");
      R.Kind = *K;
      SawKind = true;
    } else if (Head == "level") {
      if (Tokens.size() < 2)
        return Fail("level needs a value");
      std::optional<IsolationLevel> Plain = isolationLevelByName(Tokens[1]);
      if (!Plain)
        return Fail("unknown isolation level '" + Tokens[1] + "'");
      R.Level = *Plain;
      // Optional per-session assignments: "level CC S0=CC S1=RC". Gaps in
      // a (hand-edited) sparse list inherit the plain level.
      for (size_t I = 2; I != Tokens.size(); ++I) {
        std::optional<std::pair<unsigned, IsolationLevel>> Entry =
            parseSessionLevel(Tokens[I]);
        if (!Entry)
          return Fail("bad session level '" + Tokens[I] +
                      "' (expected S<N>=<LEVEL>)");
        if (R.SessionLevels.size() <= Entry->first)
          R.SessionLevels.resize(Entry->first + 1, *Plain);
        R.SessionLevels[Entry->first] = Entry->second;
      }
    } else if (Head == "verdict") {
      for (size_t I = 1; I != Tokens.size(); ++I) {
        if (Tokens[I] == "production=consistent")
          R.ProductionVerdict = true;
        else if (Tokens[I] == "reference=consistent")
          R.ReferenceVerdict = true;
        else if (Tokens[I] != "production=inconsistent" &&
                 Tokens[I] != "reference=inconsistent")
          return Fail("unknown verdict token '" + Tokens[I] + "'");
      }
    } else if (Head == "mix") {
      // Legacy spelling (pre level-line assignments); still accepted.
      for (size_t I = 1; I != Tokens.size(); ++I) {
        std::optional<IsolationLevel> L = isolationLevelByName(Tokens[I]);
        if (!L)
          return Fail("unknown isolation level '" + Tokens[I] +
                      "' in mix");
        R.SessionLevels.push_back(*L);
      }
    } else if (Head == "detail") {
      // Everything after the directive word, whatever whitespace
      // surrounds it (hand-edited files may be tab-indented).
      size_t At = Line.find("detail");
      At += 6;
      while (At < Line.size() && (Line[At] == ' ' || Line[At] == '\t'))
        ++At;
      R.Detail = Line.substr(At);
    } else if (Head == "program" || Head == "history") {
      if (Tokens.size() < 2 || Tokens[1] != "{")
        return Fail(Head + " section needs '{'");
      std::string Body;
      bool Closed = false;
      while (std::getline(IS, Line)) {
        if (Line == "}") {
          Closed = true;
          break;
        }
        Body += Line;
        Body += '\n';
      }
      if (!Closed)
        return Fail("unterminated " + Head + " section");
      std::string InnerError;
      if (Head == "program") {
        R.Prog = parseProgramText(Body, &InnerError);
        if (!R.Prog)
          return Fail("bad program section: " + InnerError);
      } else {
        R.Hist = parseHistory(Body, &InnerError);
        if (!R.Hist)
          return Fail("bad history section: " + InnerError);
      }
    } else {
      return Fail("unknown directive '" + Head + "'");
    }
  }
  if (!SawKind)
    return Fail("missing kind line");
  return R;
}
