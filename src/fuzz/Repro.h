//===- fuzz/Repro.h - Self-contained litmus repro files -------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's counterexample format: a minimized disagreement as one
/// self-contained, line-oriented text file that round-trips through
/// parseRepro — so a repro pasted into a bug report can be re-checked
/// without the generating seed. Layout (docs/TESTING.md documents the
/// grammar):
///
///   # txdpor fuzz repro v1
///   seed 42 case 17
///   kind checker-verdict-mismatch
///   level CC S0=CC S1=RC
///   verdict production=consistent reference=inconsistent
///   detail production says consistent, brute-force Def. 2.2 says ...
///   program {
///     vars x0 x1
///     session 0
///     txn
///       read r0 x0
///       write x1 (add (local r0) (const 1)) if (eq (local r0) (const 0))
///   }
///   history {
///     txn 0.0 begin write x0 = 1 commit
///   }
///
/// The history section uses history/Serialize.h's format; the program
/// section is this module's textual program grammar (writeProgramText /
/// parseProgramText). Either section may be absent: raw-history checker
/// disagreements carry no program, whole-set explorer disagreements no
/// single history.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_FUZZ_REPRO_H
#define TXDPOR_FUZZ_REPRO_H

#include "fuzz/DifferentialOracle.h"
#include "history/History.h"
#include "program/Program.h"

#include <optional>
#include <string>

namespace txdpor {
namespace fuzz {

/// Serializes \p P to the litmus program grammar. Round-trips through
/// parseProgramText (same sessions, transactions, instructions and
/// expressions; local/variable names preserved).
std::string writeProgramText(const Program &P);

/// Parses the grammar produced by writeProgramText. Returns nullopt (with
/// a diagnostic in \p Error if provided) on malformed input.
std::optional<Program> parseProgramText(const std::string &Text,
                                        std::string *Error = nullptr);

/// One minimized counterexample plus its provenance.
struct Repro {
  uint64_t Seed = 0;
  uint64_t CaseIndex = 0;
  Disagreement::Kind Kind = Disagreement::Kind::CheckerVerdictMismatch;
  IsolationLevel Level = IsolationLevel::CausalConsistency;
  bool ProductionVerdict = false;
  bool ReferenceVerdict = false;
  std::string Detail;
  /// The case's per-session isolation-level mix, carried by the `level`
  /// line's `S<N>=<LEVEL>` entries ("level CC S0=CC S1=RC"; the legacy
  /// standalone `mix RC CC` line is still accepted on input). Re-checking
  /// the program must pass the same mix to
  /// DifferentialOracle::checkProgram — it selects both the narrowed
  /// sweep and the mixed-semantics legs — or the disagreement may not
  /// reproduce.
  std::vector<IsolationLevel> SessionLevels;
  std::optional<Program> Prog;
  std::optional<History> Hist;
};

/// Serializes \p R to the self-contained litmus format above.
std::string writeRepro(const Repro &R);

/// Parses the format produced by writeRepro.
std::optional<Repro> parseRepro(const std::string &Text,
                                std::string *Error = nullptr);

} // namespace fuzz
} // namespace txdpor

#endif // TXDPOR_FUZZ_REPRO_H
