//===- fuzz/ProgramGenerator.h - Seeded program/history generation --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single randomized-workload generator shared by the test suite, the
/// bench harnesses and the differential fuzzer (fuzz/Fuzzer.h). Two
/// entry points:
///
///   * generateHistory — a structurally valid (Def. 2.1) complete history
///     whose reads pick among earlier committed writers; consistency
///     against any particular level is *not* guaranteed, which is exactly
///     what the checker cross-validation wants.
///   * generateProgram — a program in the Fig. 1 language sweeping the
///     features the explorer branches on: guards, conditional aborts,
///     read-dependent writes, and (optionally) multi-row SQL statement
///     batches compiled through sql::Table (§7.2).
///
/// Determinism contract: for a fixed (seed, shape) the output is
/// bit-identical across platforms and standard libraries — the generator
/// draws only from support/Rng.h (SplitMix64 plus hand-rolled bounded
/// sampling; see the golden-sequence test in tests/support_test.cpp) and
/// every optional feature consumes randomness *only when its knob is
/// enabled*, so shapes without a knob reproduce the sequences of the
/// legacy test-local generators exactly (tests/TestUtil.h now forwards
/// here).
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_FUZZ_PROGRAMGENERATOR_H
#define TXDPOR_FUZZ_PROGRAMGENERATOR_H

#include "consistency/IsolationLevel.h"
#include "history/History.h"
#include "program/Program.h"
#include "support/Rng.h"

#include <optional>
#include <string>
#include <vector>

namespace txdpor {
namespace fuzz {

/// Shape of random complete histories (checker cross-validation corpus).
struct HistoryShape {
  unsigned NumVars = 2;
  unsigned NumSessions = 2;
  unsigned TxnsPerSession = 2;
  unsigned MaxOpsPerTxn = 3;
  unsigned AbortPercent = 10;
};

/// Generates a structurally valid (Def. 2.1) complete history: reads pick
/// a writer among the initial transaction and earlier-created writers of
/// the variable, which keeps so ∪ wr acyclic by construction.
History generateHistory(Rng &R, const HistoryShape &Shape);

/// Shape of random programs (explorer + end-to-end corpus).
struct ProgramShape {
  unsigned NumVars = 2;
  unsigned NumSessions = 2;
  unsigned TxnsPerSession = 2;
  unsigned MaxOpsPerTxn = 2;
  bool WithGuards = true;
  bool WithAborts = true;

  /// Chance (percent) that a transaction is a batch of SQL statements
  /// against a shared sql::Table instead of plain reads/writes. 0 keeps
  /// the generator bit-compatible with the legacy test generator (no
  /// extra randomness is drawn, no table variables are interned).
  unsigned SqlTxnPercent = 0;
  unsigned SqlMaxRows = 2;
  unsigned SqlColumns = 1;

  /// Chance (percent) that a generated case carries a per-session
  /// isolation-level mix (generateCase only): the differential oracle
  /// narrows its level sweep to the levels named by the mix, adding
  /// scenario diversity along the axis of Bouajjani et al.'s mixed
  /// isolation-level follow-up (PAPERS.md, arXiv 2505.18409). 0 draws no
  /// extra randomness.
  unsigned LevelMixPercent = 0;
};

/// Generates a small random transactional program.
Program generateProgram(Rng &R, const ProgramShape &Shape);

/// A generated fuzz case: the program plus the (possibly empty)
/// per-session isolation-level mix sampled from the shape.
struct GeneratedCase {
  Program Prog;
  /// One level per session when the shape's LevelMixPercent fired;
  /// empty otherwise (= sweep the oracle's default levels).
  std::vector<IsolationLevel> SessionLevels;
};

/// Generates a program and, per ProgramShape::LevelMixPercent, a
/// per-session isolation-level mix. The program draw is identical to
/// generateProgram on the same Rng stream (the mix is sampled after it).
GeneratedCase generateCase(Rng &R, const ProgramShape &Shape);

/// Named program-shape presets for `txdpor-cli fuzz --shape`:
///   tiny     — 2 sessions × 1 txn, no guards/aborts (fast triage)
///   default  — 2 × 2 with guards and aborts
///   wide     — 3 sessions × 2 txns, 3 vars
///   deep     — 2 sessions × 3 txns, up to 3 ops
///   sql      — default plus 60% SQL statement batches
///   mixed    — default plus per-session isolation-level mixes
std::optional<ProgramShape> programShapeByName(const std::string &Name);

/// All preset names, in the order listed above.
std::vector<std::string> programShapeNames();

/// The history shape the fuzzer pairs with a program shape: same session/
/// transaction/variable counts, op count from the program shape + 1 (the
/// legacy history corpus used one more op per transaction).
HistoryShape historyShapeFor(const ProgramShape &Shape);

} // namespace fuzz
} // namespace txdpor

#endif // TXDPOR_FUZZ_PROGRAMGENERATOR_H
