//===- apps/ShoppingCart.h - Shopping Cart benchmark (§7.2) ---------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Shopping Cart application (Sivaramakrishnan et al. 2015, as used in
/// the paper's benchmark): users add, get and remove items from their cart
/// and change item quantities. Following the paper's SQL modeling (§7.2),
/// each user's cart table is a "set" variable whose value is a bitmask of
/// the item ids present, plus one row variable per (user, item) holding
/// the quantity.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_APPS_SHOPPINGCART_H
#define TXDPOR_APPS_SHOPPINGCART_H

#include "program/Program.h"
#include "support/Rng.h"

#include <vector>

namespace txdpor {

class ShoppingCartApp {
public:
  /// Declares the cart variables for \p NumUsers × \p NumItems in \p B.
  ShoppingCartApp(ProgramBuilder &B, unsigned NumUsers, unsigned NumItems);

  /// INSERT INTO cart(user) VALUES (item, qty): read the cart set, add the
  /// item bit, write the quantity row.
  void addItem(unsigned Session, unsigned User, unsigned Item, Value Qty);

  /// DELETE FROM cart(user) WHERE id = item.
  void removeItem(unsigned Session, unsigned User, unsigned Item);

  /// UPDATE cart(user) SET qty WHERE id = item (guarded by membership).
  void changeQty(unsigned Session, unsigned User, unsigned Item, Value Qty);

  /// SELECT * FROM cart(user): read the set variable then the rows.
  void getCart(unsigned Session, unsigned User);

  /// Appends one uniformly chosen transaction with random parameters.
  void addRandomTxn(unsigned Session, Rng &R);

  VarId cartSetVar(unsigned User) const { return CartSet[User]; }
  VarId qtyVar(unsigned User, unsigned Item) const {
    return Qty[User * NumItems + Item];
  }

private:
  ProgramBuilder &B;
  unsigned NumUsers, NumItems;
  std::vector<VarId> CartSet; ///< Per user: bitmask of item ids.
  std::vector<VarId> Qty;     ///< Per (user, item): quantity row.
};

} // namespace txdpor

#endif // TXDPOR_APPS_SHOPPINGCART_H
