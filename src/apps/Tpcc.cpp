//===- apps/Tpcc.cpp - TPC-C benchmark ------------------------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "apps/Tpcc.h"

using namespace txdpor;

TpccApp::TpccApp(ProgramBuilder &B, unsigned NumItems, unsigned NumCustomers)
    : B(B), NumItems(NumItems), NumCustomers(NumCustomers) {
  NextOrderId = B.var("d_next_oid");
  Delivered = B.var("d_delivered");
  WarehouseYtd = B.var("w_ytd");
  for (unsigned I = 0; I != NumItems; ++I)
    Stock.push_back(B.var("stock" + std::to_string(I)));
  for (unsigned C = 0; C != NumCustomers; ++C)
    Balance.push_back(B.var("balance" + std::to_string(C)));
}

void TpccApp::stockLevel(unsigned Session, unsigned Item) {
  auto T = B.beginTxn(Session, "stockLevel");
  T.read("o", nextOrderIdVar());
  T.read("s", stockVar(Item));
}

void TpccApp::newOrder(unsigned Session, unsigned Item) {
  auto T = B.beginTxn(Session, "newOrder");
  T.read("o", nextOrderIdVar());
  T.write(nextOrderIdVar(), T.local("o") + 1);
  T.read("s", stockVar(Item));
  T.write(stockVar(Item), T.local("s") - 1);
}

void TpccApp::orderStatus(unsigned Session, unsigned Customer) {
  auto T = B.beginTxn(Session, "orderStatus");
  T.read("o", nextOrderIdVar());
  T.read("b", balanceVar(Customer));
}

void TpccApp::payment(unsigned Session, unsigned Customer, Value Amount) {
  auto T = B.beginTxn(Session, "payment");
  T.read("b", balanceVar(Customer));
  T.write(balanceVar(Customer), T.local("b") - Amount);
  T.read("y", warehouseYtdVar());
  T.write(warehouseYtdVar(), T.local("y") + Amount);
}

void TpccApp::delivery(unsigned Session) {
  auto T = B.beginTxn(Session, "delivery");
  T.read("o", nextOrderIdVar());
  T.read("d", deliveredVar());
  // Deliver the oldest undelivered order, if any.
  T.write(deliveredVar(), T.local("d") + 1,
          lt(T.local("d"), T.local("o")));
}

void TpccApp::addRandomTxn(unsigned Session, Rng &R) {
  unsigned Item = static_cast<unsigned>(R.nextBelow(NumItems));
  unsigned Customer = static_cast<unsigned>(R.nextBelow(NumCustomers));
  switch (R.nextBelow(5)) {
  case 0:
    stockLevel(Session, Item);
    break;
  case 1:
    newOrder(Session, Item);
    break;
  case 2:
    orderStatus(Session, Customer);
    break;
  case 3:
    payment(Session, Customer, static_cast<Value>(R.nextInRange(1, 5)));
    break;
  default:
    delivery(Session);
    break;
  }
}
