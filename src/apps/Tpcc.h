//===- apps/Tpcc.h - TPC-C benchmark (§7.2) -------------------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The TPC-C online-shopping model with the paper's five transaction
/// types: reading the stock of a product, creating a new order, getting
/// its status, paying it, and delivering it. Modeling (one warehouse /
/// district, per the bounded client programs): a district next-order-id
/// counter, per-item stock rows, per-customer balance rows, a warehouse
/// year-to-date total, and a delivered-order counter.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_APPS_TPCC_H
#define TXDPOR_APPS_TPCC_H

#include "program/Program.h"
#include "support/Rng.h"

#include <vector>

namespace txdpor {

class TpccApp {
public:
  TpccApp(ProgramBuilder &B, unsigned NumItems, unsigned NumCustomers);

  /// Stock-Level: read an item's stock.
  void stockLevel(unsigned Session, unsigned Item);

  /// New-Order: allocate the next order id and decrement the stock.
  void newOrder(unsigned Session, unsigned Item);

  /// Order-Status: read the district order counter and customer balance.
  void orderStatus(unsigned Session, unsigned Customer);

  /// Payment: debit the customer, credit the warehouse YTD.
  void payment(unsigned Session, unsigned Customer, Value Amount);

  /// Delivery: advance the delivered-order counter up to the newest order.
  void delivery(unsigned Session);

  void addRandomTxn(unsigned Session, Rng &R);

  VarId nextOrderIdVar() const { return NextOrderId; }
  VarId deliveredVar() const { return Delivered; }
  VarId warehouseYtdVar() const { return WarehouseYtd; }
  VarId stockVar(unsigned Item) const { return Stock[Item]; }
  VarId balanceVar(unsigned Customer) const { return Balance[Customer]; }

private:
  ProgramBuilder &B;
  unsigned NumItems, NumCustomers;
  VarId NextOrderId, Delivered, WarehouseYtd;
  std::vector<VarId> Stock, Balance;
};

} // namespace txdpor

#endif // TXDPOR_APPS_TPCC_H
