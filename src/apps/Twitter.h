//===- apps/Twitter.h - Twitter benchmark (§7.2) --------------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Twitter application (Difallah et al., OLTP-Bench): users follow
/// other users, publish tweets, and fetch followers / timelines. Modeling:
/// per user a "follows" set variable (bitmask of followed user ids), a
/// "followers" set variable, and a tweet counter standing for the user's
/// tweet list (publishing appends, i.e. increments).
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_APPS_TWITTER_H
#define TXDPOR_APPS_TWITTER_H

#include "program/Program.h"
#include "support/Rng.h"

#include <vector>

namespace txdpor {

class TwitterApp {
public:
  TwitterApp(ProgramBuilder &B, unsigned NumUsers);

  /// u follows v: update both the follows set of u and followers of v.
  void follow(unsigned Session, unsigned U, unsigned V);

  /// u publishes a tweet (appends to its tweet list).
  void tweet(unsigned Session, unsigned U);

  /// SELECT followers of u.
  void getFollowers(unsigned Session, unsigned U);

  /// Timeline of u: read who u follows, then their tweet lists.
  void getTimeline(unsigned Session, unsigned U);

  void addRandomTxn(unsigned Session, Rng &R);

  VarId followsVar(unsigned U) const { return Follows[U]; }
  VarId followersVar(unsigned U) const { return Followers[U]; }
  VarId tweetsVar(unsigned U) const { return Tweets[U]; }

private:
  ProgramBuilder &B;
  unsigned NumUsers;
  std::vector<VarId> Follows, Followers, Tweets;
};

} // namespace txdpor

#endif // TXDPOR_APPS_TWITTER_H
