//===- apps/Applications.cpp - Client-program generation ------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "apps/Applications.h"

#include "apps/Courseware.h"
#include "apps/ShoppingCart.h"
#include "apps/Tpcc.h"
#include "apps/Twitter.h"
#include "apps/Wikipedia.h"
#include "support/Rng.h"

using namespace txdpor;

const char *txdpor::appName(AppKind App) {
  switch (App) {
  case AppKind::ShoppingCart:
    return "shoppingCart";
  case AppKind::Twitter:
    return "twitter";
  case AppKind::Courseware:
    return "courseware";
  case AppKind::Wikipedia:
    return "wikipedia";
  case AppKind::Tpcc:
    return "tpcc";
  case AppKind::IdenticalSessions:
    return "identical";
  }
  return "?";
}

std::string txdpor::clientName(AppKind App, unsigned ClientIndex) {
  return std::string(appName(App)) + "-" + std::to_string(ClientIndex + 1);
}

Program txdpor::makeClientProgram(AppKind App, const ClientSpec &Spec) {
  // Mix the application kind into the seed so clients of different apps
  // with the same index differ.
  Rng R(Spec.Seed * 0x9e3779b97f4a7c15ULL +
        static_cast<uint64_t>(App) * 0x2545f4914f6cdd1dULL + 17);
  ProgramBuilder B;

  // Parameter spaces are deliberately small (2 users / items / pages):
  // the paper's client programs are bounded the same way, and exploration
  // cost is exponential in the number of conflicting accesses.
  switch (App) {
  case AppKind::ShoppingCart: {
    ShoppingCartApp A(B, /*NumUsers=*/2, /*NumItems=*/2);
    for (unsigned S = 0; S != Spec.Sessions; ++S)
      for (unsigned T = 0; T != Spec.TxnsPerSession; ++T)
        A.addRandomTxn(S, R);
    break;
  }
  case AppKind::Twitter: {
    TwitterApp A(B, /*NumUsers=*/2);
    for (unsigned S = 0; S != Spec.Sessions; ++S)
      for (unsigned T = 0; T != Spec.TxnsPerSession; ++T)
        A.addRandomTxn(S, R);
    break;
  }
  case AppKind::Courseware: {
    CoursewareApp A(B, /*NumStudents=*/2, /*NumCourses=*/2, /*Capacity=*/1);
    for (unsigned S = 0; S != Spec.Sessions; ++S)
      for (unsigned T = 0; T != Spec.TxnsPerSession; ++T)
        A.addRandomTxn(S, R);
    break;
  }
  case AppKind::Wikipedia: {
    WikipediaApp A(B, /*NumUsers=*/2, /*NumPages=*/2);
    for (unsigned S = 0; S != Spec.Sessions; ++S)
      for (unsigned T = 0; T != Spec.TxnsPerSession; ++T)
        A.addRandomTxn(S, R);
    break;
  }
  case AppKind::Tpcc: {
    TpccApp A(B, /*NumItems=*/2, /*NumCustomers=*/2);
    for (unsigned S = 0; S != Spec.Sessions; ++S)
      for (unsigned T = 0; T != Spec.TxnsPerSession; ++T)
        A.addRandomTxn(S, R);
    break;
  }
  case AppKind::IdenticalSessions: {
    // The session-symmetry stress shape: one transaction sequence is
    // drawn from the seed and *every* session runs it verbatim, so all
    // sessions fall into a single structural class and the exploration
    // tree is dominated by renaming-isomorphic subtrees. Two hot
    // variables keep the transactions conflicting (a conflict-free
    // symmetric program would have a trivial tree).
    VarId X = B.var("x");
    VarId Y = B.var("y");
    for (unsigned T = 0; T != Spec.TxnsPerSession; ++T) {
      uint64_t Template = R.nextBelow(4);
      Value K = R.nextInRange(1, 4);
      for (unsigned S = 0; S != Spec.Sessions; ++S) {
        ProgramBuilder::TxnHandle Txn =
            B.beginTxn(S, "same" + std::to_string(T));
        switch (Template) {
        case 0: // counter increment on the contended variable
          Txn.read("a", X).write(X, Txn.local("a") + 1);
          break;
        case 1: // two-variable read-only snapshot
          Txn.read("a", X).read("b", Y);
          break;
        case 2: // blind write
          Txn.write(Y, K);
          break;
        default: // read-modify-write across the pair
          Txn.read("b", Y).write(Y, Txn.local("b") + K).write(X, K);
          break;
        }
      }
    }
    break;
  }
  }
  Program P = B.build();
  if (Spec.MixedLevels) {
    // "RC readers, CC writers": a session that never writes a global
    // variable can run at RC without losing any of the stronger
    // sessions' guarantees; sessions that write keep MixedBase. Decided
    // from the built program, so every app gets its mixed variant from
    // the same transaction mix as its uniform client. The variant only
    // ever *weakens* the readers: with a base already at or below RC the
    // readers keep the base (tagging them RC would run them stronger
    // than the writers, inverting the feature).
    IsolationLevel Readers =
        isWeakerOrEqual(Spec.MixedBase, IsolationLevel::ReadCommitted)
            ? Spec.MixedBase
            : IsolationLevel::ReadCommitted;
    LevelAssignment Levels(Spec.MixedBase);
    for (unsigned S = 0; S != P.numSessions(); ++S) {
      bool Writes = false;
      for (unsigned T = 0; T != P.numTxns(S) && !Writes; ++T)
        for (const Instr &I : P.txn({S, T}).body())
          if (I.Kind == InstrKind::Write) {
            Writes = true;
            break;
          }
      Levels.set(S, Writes ? Spec.MixedBase : Readers);
    }
    P.setLevels(std::move(Levels));
  }
  return P;
}
