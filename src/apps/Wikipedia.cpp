//===- apps/Wikipedia.cpp - Wikipedia benchmark ---------------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "apps/Wikipedia.h"

using namespace txdpor;

WikipediaApp::WikipediaApp(ProgramBuilder &B, unsigned NumUsers,
                           unsigned NumPages)
    : B(B), NumUsers(NumUsers), NumPages(NumPages) {
  for (unsigned P = 0; P != NumPages; ++P)
    PageRev.push_back(B.var("page" + std::to_string(P)));
  for (unsigned U = 0; U != NumUsers; ++U)
    Watch.push_back(B.var("watch" + std::to_string(U)));
}

void WikipediaApp::getPageAnonymous(unsigned Session, unsigned Page) {
  auto T = B.beginTxn(Session, "getPageAnon");
  T.read("r", pageVar(Page));
}

void WikipediaApp::getPageAuthenticated(unsigned Session, unsigned User,
                                        unsigned Page) {
  auto T = B.beginTxn(Session, "getPageAuth");
  T.read("w", watchVar(User));
  T.read("r", pageVar(Page));
}

void WikipediaApp::updatePage(unsigned Session, unsigned User,
                              unsigned Page) {
  auto T = B.beginTxn(Session, "updatePage");
  T.read("r", pageVar(Page));
  T.write(pageVar(Page), T.local("r") + 1);
  // The editor's own watch list is refreshed to include the page.
  T.read("w", watchVar(User));
  T.write(watchVar(User), bitOr(T.local("w"), Value(1) << Page));
}

void WikipediaApp::addWatch(unsigned Session, unsigned User, unsigned Page) {
  auto T = B.beginTxn(Session, "addWatch");
  T.read("w", watchVar(User));
  T.write(watchVar(User), bitOr(T.local("w"), Value(1) << Page));
}

void WikipediaApp::removeWatch(unsigned Session, unsigned User,
                               unsigned Page) {
  auto T = B.beginTxn(Session, "removeWatch");
  T.read("w", watchVar(User));
  T.write(watchVar(User), bitAnd(T.local("w"), ~(Value(1) << Page)));
}

void WikipediaApp::addRandomTxn(unsigned Session, Rng &R) {
  unsigned User = static_cast<unsigned>(R.nextBelow(NumUsers));
  unsigned Page = static_cast<unsigned>(R.nextBelow(NumPages));
  switch (R.nextBelow(5)) {
  case 0:
    getPageAnonymous(Session, Page);
    break;
  case 1:
    getPageAuthenticated(Session, User, Page);
    break;
  case 2:
    updatePage(Session, User, Page);
    break;
  case 3:
    addWatch(Session, User, Page);
    break;
  default:
    removeWatch(Session, User, Page);
    break;
  }
}
