//===- apps/Courseware.cpp - Courseware benchmark -------------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "apps/Courseware.h"

using namespace txdpor;

CoursewareApp::CoursewareApp(ProgramBuilder &B, unsigned NumStudents,
                             unsigned NumCourses, Value Capacity)
    : B(B), NumStudents(NumStudents), NumCourses(NumCourses),
      Capacity(Capacity) {
  for (unsigned C = 0; C != NumCourses; ++C) {
    Status.push_back(B.var("course" + std::to_string(C)));
    Enrolled.push_back(B.var("enrolled" + std::to_string(C)));
    Count.push_back(B.var("count" + std::to_string(C)));
  }
}

void CoursewareApp::openCourse(unsigned Session, unsigned Course) {
  auto T = B.beginTxn(Session, "openCourse");
  T.write(statusVar(Course), 1);
}

void CoursewareApp::closeCourse(unsigned Session, unsigned Course) {
  auto T = B.beginTxn(Session, "closeCourse");
  T.read("s", statusVar(Course));
  // Only an open course can be closed.
  T.write(statusVar(Course), 2, eq(T.local("s"), 1));
}

void CoursewareApp::deleteCourse(unsigned Session, unsigned Course) {
  auto T = B.beginTxn(Session, "deleteCourse");
  T.read("s", statusVar(Course));
  T.write(statusVar(Course), 0, ne(T.local("s"), 0));
}

void CoursewareApp::enroll(unsigned Session, unsigned Student,
                           unsigned Course) {
  auto T = B.beginTxn(Session, "enroll");
  T.read("s", statusVar(Course));
  T.read("n", countVar(Course));
  ExprRef Ok = land(eq(T.local("s"), 1), lt(T.local("n"), Capacity));
  T.read("e", enrolledVar(Course), Ok);
  T.write(enrolledVar(Course), bitOr(T.local("e"), Value(1) << Student), Ok);
  T.write(countVar(Course), T.local("n") + 1, Ok);
  T.assign("did", Ok);
}

void CoursewareApp::getEnrollments(unsigned Session, unsigned Course) {
  auto T = B.beginTxn(Session, "getEnrollments");
  T.read("e", enrolledVar(Course));
  T.read("n", countVar(Course));
}

void CoursewareApp::addRandomTxn(unsigned Session, Rng &R) {
  unsigned Course = static_cast<unsigned>(R.nextBelow(NumCourses));
  unsigned Student = static_cast<unsigned>(R.nextBelow(NumStudents));
  switch (R.nextBelow(6)) {
  case 0:
    openCourse(Session, Course);
    break;
  case 1:
    closeCourse(Session, Course);
    break;
  case 2:
    deleteCourse(Session, Course);
    break;
  case 3:
  case 4: // Enrollments dominate the workload.
    enroll(Session, Student, Course);
    break;
  default:
    getEnrollments(Session, Course);
    break;
  }
}
