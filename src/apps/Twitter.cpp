//===- apps/Twitter.cpp - Twitter benchmark -------------------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "apps/Twitter.h"

using namespace txdpor;

TwitterApp::TwitterApp(ProgramBuilder &B, unsigned NumUsers)
    : B(B), NumUsers(NumUsers) {
  for (unsigned U = 0; U != NumUsers; ++U) {
    Follows.push_back(B.var("follows" + std::to_string(U)));
    Followers.push_back(B.var("followers" + std::to_string(U)));
    Tweets.push_back(B.var("tweets" + std::to_string(U)));
  }
}

void TwitterApp::follow(unsigned Session, unsigned U, unsigned V) {
  auto T = B.beginTxn(Session, "follow");
  T.read("f", followsVar(U));
  T.write(followsVar(U), bitOr(T.local("f"), Value(1) << V));
  T.read("g", followersVar(V));
  T.write(followersVar(V), bitOr(T.local("g"), Value(1) << U));
}

void TwitterApp::tweet(unsigned Session, unsigned U) {
  auto T = B.beginTxn(Session, "tweet");
  T.read("n", tweetsVar(U));
  T.write(tweetsVar(U), T.local("n") + 1);
}

void TwitterApp::getFollowers(unsigned Session, unsigned U) {
  auto T = B.beginTxn(Session, "getFollowers");
  T.read("g", followersVar(U));
}

void TwitterApp::getTimeline(unsigned Session, unsigned U) {
  auto T = B.beginTxn(Session, "getTimeline");
  T.read("f", followsVar(U));
  for (unsigned V = 0; V != NumUsers; ++V)
    T.read("t" + std::to_string(V), tweetsVar(V),
           ne(bitAnd(T.local("f"), Value(1) << V), 0));
}

void TwitterApp::addRandomTxn(unsigned Session, Rng &R) {
  unsigned U = static_cast<unsigned>(R.nextBelow(NumUsers));
  unsigned V = static_cast<unsigned>(R.nextBelow(NumUsers));
  switch (R.nextBelow(4)) {
  case 0:
    follow(Session, U, V == U ? (V + 1) % NumUsers : V);
    break;
  case 1:
    tweet(Session, U);
    break;
  case 2:
    getFollowers(Session, U);
    break;
  default:
    getTimeline(Session, U);
    break;
  }
}
