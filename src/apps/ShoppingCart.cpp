//===- apps/ShoppingCart.cpp - Shopping Cart benchmark --------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//

#include "apps/ShoppingCart.h"

using namespace txdpor;

ShoppingCartApp::ShoppingCartApp(ProgramBuilder &B, unsigned NumUsers,
                                 unsigned NumItems)
    : B(B), NumUsers(NumUsers), NumItems(NumItems) {
  for (unsigned U = 0; U != NumUsers; ++U) {
    CartSet.push_back(B.var("cart" + std::to_string(U)));
    for (unsigned I = 0; I != NumItems; ++I)
      Qty.push_back(B.var("qty" + std::to_string(U) + "_" +
                          std::to_string(I)));
  }
}

void ShoppingCartApp::addItem(unsigned Session, unsigned User, unsigned Item,
                              Value QtyVal) {
  auto T = B.beginTxn(Session, "addItem");
  T.read("c", cartSetVar(User));
  T.write(cartSetVar(User), bitOr(T.local("c"), Value(1) << Item));
  T.write(qtyVar(User, Item), QtyVal);
}

void ShoppingCartApp::removeItem(unsigned Session, unsigned User,
                                 unsigned Item) {
  auto T = B.beginTxn(Session, "removeItem");
  T.read("c", cartSetVar(User));
  T.write(cartSetVar(User), bitAnd(T.local("c"), ~(Value(1) << Item)));
  T.write(qtyVar(User, Item), 0);
}

void ShoppingCartApp::changeQty(unsigned Session, unsigned User,
                                unsigned Item, Value QtyVal) {
  auto T = B.beginTxn(Session, "changeQty");
  T.read("c", cartSetVar(User));
  // WHERE id = item: the row update happens only if the item is present.
  T.write(qtyVar(User, Item), QtyVal,
          ne(bitAnd(T.local("c"), Value(1) << Item), 0));
}

void ShoppingCartApp::getCart(unsigned Session, unsigned User) {
  auto T = B.beginTxn(Session, "getCart");
  T.read("c", cartSetVar(User));
  for (unsigned I = 0; I != NumItems; ++I)
    T.read("q" + std::to_string(I), qtyVar(User, I),
           ne(bitAnd(T.local("c"), Value(1) << I), 0));
}

void ShoppingCartApp::addRandomTxn(unsigned Session, Rng &R) {
  unsigned User = static_cast<unsigned>(R.nextBelow(NumUsers));
  unsigned Item = static_cast<unsigned>(R.nextBelow(NumItems));
  Value QtyVal = static_cast<Value>(R.nextInRange(1, 3));
  switch (R.nextBelow(4)) {
  case 0:
    addItem(Session, User, Item, QtyVal);
    break;
  case 1:
    removeItem(Session, User, Item);
    break;
  case 2:
    changeQty(Session, User, Item, QtyVal);
    break;
  default:
    getCart(Session, User);
    break;
  }
}
