//===- apps/Wikipedia.h - Wikipedia benchmark (§7.2) ----------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Wikipedia application (Difallah et al., OLTP-Bench): users fetch
/// page content (anonymously or logged in), update pages, and manage their
/// watch lists. Modeling: per page a revision variable (updates create a
/// new revision, i.e. increment), per user a watch-list "set" variable
/// (bitmask of page ids).
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_APPS_WIKIPEDIA_H
#define TXDPOR_APPS_WIKIPEDIA_H

#include "program/Program.h"
#include "support/Rng.h"

#include <vector>

namespace txdpor {

class WikipediaApp {
public:
  WikipediaApp(ProgramBuilder &B, unsigned NumUsers, unsigned NumPages);

  /// Anonymous page fetch: read the page revision.
  void getPageAnonymous(unsigned Session, unsigned Page);

  /// Authenticated page fetch: read the page and the user's watch list.
  void getPageAuthenticated(unsigned Session, unsigned User, unsigned Page);

  /// Edit: read current revision, write the next one, and touch the
  /// watching users' notification flag (modeled by re-writing the watch
  /// set the user observed).
  void updatePage(unsigned Session, unsigned User, unsigned Page);

  void addWatch(unsigned Session, unsigned User, unsigned Page);
  void removeWatch(unsigned Session, unsigned User, unsigned Page);

  void addRandomTxn(unsigned Session, Rng &R);

  VarId pageVar(unsigned Page) const { return PageRev[Page]; }
  VarId watchVar(unsigned User) const { return Watch[User]; }

private:
  ProgramBuilder &B;
  unsigned NumUsers, NumPages;
  std::vector<VarId> PageRev, Watch;
};

} // namespace txdpor

#endif // TXDPOR_APPS_WIKIPEDIA_H
