//===- apps/Courseware.h - Courseware benchmark (§7.2) --------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Courseware application (Nair et al. 2020): courses can be opened,
/// closed and deleted; students enroll only while a course is open and
/// below its capacity. Modeling: per course a status variable
/// (0 = deleted/absent, 1 = open, 2 = closed), an enrollment "set"
/// variable (bitmask of student ids) and an enrollment counter.
///
/// The capacity check makes this the canonical weak-isolation anomaly
/// demo: two concurrent enrollments can both pass the capacity test under
/// CC (and even SI) and overfill the course; examples/courseware_capacity
/// uses exactly this.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_APPS_COURSEWARE_H
#define TXDPOR_APPS_COURSEWARE_H

#include "program/Program.h"
#include "support/Rng.h"

#include <vector>

namespace txdpor {

class CoursewareApp {
public:
  CoursewareApp(ProgramBuilder &B, unsigned NumStudents, unsigned NumCourses,
                Value Capacity);

  void openCourse(unsigned Session, unsigned Course);
  void closeCourse(unsigned Session, unsigned Course);
  void deleteCourse(unsigned Session, unsigned Course);

  /// Enrolls \p Student if the course is open and under capacity; the
  /// local "did" records whether the enrollment happened.
  void enroll(unsigned Session, unsigned Student, unsigned Course);

  /// SELECT enrollments of a course (set + counter).
  void getEnrollments(unsigned Session, unsigned Course);

  void addRandomTxn(unsigned Session, Rng &R);

  VarId statusVar(unsigned Course) const { return Status[Course]; }
  VarId enrolledVar(unsigned Course) const { return Enrolled[Course]; }
  VarId countVar(unsigned Course) const { return Count[Course]; }
  Value capacity() const { return Capacity; }

private:
  ProgramBuilder &B;
  unsigned NumStudents, NumCourses;
  Value Capacity;
  std::vector<VarId> Status, Enrolled, Count;
};

} // namespace txdpor

#endif // TXDPOR_APPS_COURSEWARE_H
