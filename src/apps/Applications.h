//===- apps/Applications.h - Client-program generation (§7.2) -------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark of §7 uses bounded client programs of five applications:
/// for each application, several independent clients, each with a number
/// of sessions and transactions per session drawn from the application's
/// transaction mix. makeClientProgram reproduces that setup with a seeded
/// deterministic generator, so every bench run explores identical
/// programs.
///
//===----------------------------------------------------------------------===//

#ifndef TXDPOR_APPS_APPLICATIONS_H
#define TXDPOR_APPS_APPLICATIONS_H

#include "program/Program.h"

#include <array>
#include <string>

namespace txdpor {

enum class AppKind : uint8_t {
  ShoppingCart,
  Twitter,
  Courseware,
  Wikipedia,
  Tpcc,
  /// Maximal-session-symmetry workload: every session runs the *same*
  /// seed-drawn transaction sequence over two hot variables. Not one of
  /// the paper's five applications — this is the stress shape for the
  /// session-symmetry dedup (core/Dedup.h), where the exploration tree
  /// consists almost entirely of renaming-isomorphic subtrees.
  IdenticalSessions,
};

inline constexpr std::array<AppKind, 6> AllApps = {
    AppKind::ShoppingCart, AppKind::Twitter,   AppKind::Courseware,
    AppKind::Wikipedia,    AppKind::Tpcc,      AppKind::IdenticalSessions};

/// The paper's five applications (§7.2) — the roster behind the
/// "25-program benchmark" of BenchCommon. IdenticalSessions is excluded:
/// it is our symmetry stress shape, not part of the paper's evaluation.
inline constexpr std::array<AppKind, 5> PaperApps = {
    AppKind::ShoppingCart, AppKind::Twitter, AppKind::Courseware,
    AppKind::Wikipedia, AppKind::Tpcc};

/// Lower-case application name as used in the paper's tables
/// ("shoppingCart", "twitter", ...).
const char *appName(AppKind App);

/// Shape of one client program.
struct ClientSpec {
  unsigned Sessions = 3;
  unsigned TxnsPerSession = 3;
  uint64_t Seed = 1;
  /// Mixed-isolation variant of the workload (arXiv 2505.18409): tag each
  /// read-only session ReadCommitted and every writing session MixedBase
  /// — the classic "RC readers, CC writers" deployment (e.g. tpcc audit
  /// scans at RC while order entry stays CC). The instruction sequence is
  /// identical to the uniform client for the same seed; only
  /// Program::levels() differs.
  bool MixedLevels = false;
  IsolationLevel MixedBase = IsolationLevel::CausalConsistency;
};

/// Generates a bounded client program of \p App: Spec.Sessions sessions,
/// each a sequence of Spec.TxnsPerSession transactions drawn from the
/// application's transaction mix with Spec.Seed-deterministic parameters.
Program makeClientProgram(AppKind App, const ClientSpec &Spec);

/// The paper's benchmark id, e.g. "tpcc-3" for the third TPC-C client.
std::string clientName(AppKind App, unsigned ClientIndex);

} // namespace txdpor

#endif // TXDPOR_APPS_APPLICATIONS_H
