//===- examples/quickstart.cpp - txdpor in 60 lines ------------------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: build a two-session transactional program, enumerate all
/// of its histories under Causal Consistency with the strongly-optimal
/// explore-ce algorithm, and print them. Then compare how many of those
/// histories survive under Snapshot Isolation and Serializability using
/// explore-ce*.
///
/// Histories are copy-on-write values (History.h): collecting them, as
/// enumerateHistories does, and copying them around is O(#transactions)
/// pointer work; event storage is duplicated only when a copy is mutated.
/// The tail of main() demonstrates that value semantics.
///
//===----------------------------------------------------------------------===//

#include "core/Enumerate.h"

#include <iostream>

using namespace txdpor;

int main() {
  // The program of the paper's Fig. 10:
  //   session 0: begin; a := read(x); b := read(y); commit
  //   session 1: begin; write(x, 2); write(y, 2); commit
  ProgramBuilder B;
  VarId X = B.var("x");
  VarId Y = B.var("y");
  auto Reader = B.beginTxn(0, "reader");
  Reader.read("a", X);
  Reader.read("b", Y);
  auto Writer = B.beginTxn(1, "writer");
  Writer.write(X, 2);
  Writer.write(Y, 2);
  Program P = B.build();

  std::cout << "Program:\n" << P.str() << '\n';

  // Enumerate every history under Causal Consistency: sound, complete,
  // strongly optimal, polynomial space (Theorem 5.1).
  VarNameFn Names = P.varNameFn();
  auto CC = enumerateHistories(
      P, ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency));
  std::cout << "Histories under CC: " << CC.Histories.size() << "\n\n";
  for (const History &H : CC.Histories)
    std::cout << H.str(&Names) << '\n';

  // The same exploration filtered by stronger levels (explore-ce*).
  for (IsolationLevel Filter : {IsolationLevel::SnapshotIsolation,
                                IsolationLevel::Serializability}) {
    auto R = enumerateHistories(
        P, ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                         Filter));
    std::cout << "Histories under " << isolationLevelName(Filter) << ": "
              << R.Histories.size() << " (of " << R.Stats.EndStates
              << " explored end states)\n";
  }

  // Copy-on-write value semantics: the copy shares every transaction log
  // with the archived history until it is mutated; mutating it leaves the
  // archive untouched.
  History Copy = CC.Histories.front();
  Copy.beginTxn(TxnUid{2, 0}); // Extends only the copy.
  std::cout << "\nCOW check: copy has " << Copy.numTxns()
            << " transactions, archived original still has "
            << CC.Histories.front().numTxns() << '\n';

  std::cout << "\nExploration stats (CC): " << CC.Stats.ExploreCalls
            << " explore calls, " << CC.Stats.SwapsApplied
            << " swaps applied, " << CC.Stats.ElapsedMillis << " ms\n";
  return 0;
}
