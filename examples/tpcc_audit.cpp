//===- examples/tpcc_audit.cpp - TPC-C money-conservation audit -----------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TPC-C-style audit: Payment transactions debit a customer balance and
/// credit the warehouse year-to-date total; money must be conserved
/// (customer debits == warehouse credits). Two concurrent payments to the
/// same customer form racing read-modify-writes on both rows. Under weak
/// isolation a lost update breaks the books; the checker finds the
/// smallest such history, explains *why* it is admitted, and identifies
/// the weakest level at which the audit always balances.
///
//===----------------------------------------------------------------------===//

#include "apps/Tpcc.h"
#include "consistency/Explain.h"
#include "core/Enumerate.h"

#include <iostream>

using namespace txdpor;

int main() {
  ProgramBuilder B;
  TpccApp App(B, /*NumItems=*/1, /*NumCustomers=*/1);
  App.payment(0, /*Customer=*/0, /*Amount=*/3);
  App.payment(1, /*Customer=*/0, /*Amount=*/4);
  Program P = B.build();
  std::cout << "Program (two concurrent payments):\n" << P.str() << '\n';

  // Conservation: final balance + final YTD must equal 0 + 0 net of the
  // two amounts, i.e. balance = -(3+4) and ytd = 3+4 — unless an update
  // was lost. We recompute the final values from each side's observation.
  AssertionFn BooksBalance = [](const FinalStates &S) {
    // Each payment wrote balance = b_seen - amt and ytd = y_seen + amt.
    // The *database-final* values are whichever write is causally last,
    // but a conservation check works on the observations: if both
    // payments read balance 0, one debit is lost.
    bool LostDebit = S.local(0, 0, "b") == S.local(1, 0, "b");
    bool LostCredit = S.local(0, 0, "y") == S.local(1, 0, "y");
    return !(LostDebit || LostCredit);
  };

  VarNameFn Names = P.varNameFn();
  const std::pair<const char *, ExplorerConfig> Algos[] = {
      {"CC", ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency)},
      {"CC + SI",
       ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                     IsolationLevel::SnapshotIsolation)},
      {"CC + SER",
       ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                     IsolationLevel::Serializability)},
  };

  for (const auto &[Name, Config] : Algos) {
    AssertionResult R = checkAssertion(P, Config, BooksBalance);
    std::cout << "Audit under " << Name << ": ";
    if (!R.ViolationFound) {
      std::cout << "books balance across all " << R.Checked
                << " behaviors\n\n";
      continue;
    }
    std::cout << "MONEY LOST. Witness:\n" << R.Witness.str(&Names);
    // Show why serializability rejects this very history.
    ViolationExplanation E = explainViolation(
        R.Witness, IsolationLevel::Serializability, &Names);
    std::cout << E.Text << '\n';
  }

  std::cout << "Conclusion: the Payment RMW pattern needs at least SI "
               "(first-committer-wins)\nto conserve money; CC admits the "
               "lost update.\n";
  return 0;
}
