//===- examples/bank_write_skew.cpp - Finding a write-skew overdraft ------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic write-skew banking bug: a customer holds two accounts and
/// the bank only requires the *combined* balance to stay non-negative.
/// Two concurrent withdrawals each check the invariant against their
/// snapshot and then debit different accounts. Snapshot Isolation admits
/// the anomaly (both see the full combined balance); Serializability does
/// not. The model checker finds a violating history under SI and proves
/// the program safe under SER — exactly the use case the paper targets.
///
//===----------------------------------------------------------------------===//

#include "core/Enumerate.h"

#include <iostream>

using namespace txdpor;

int main() {
  ProgramBuilder B;
  VarId AcctX = B.var("acct_x");
  VarId AcctY = B.var("acct_y");

  // Session 0 funds account x with 1 unit (account y stays at 0).
  B.beginTxn(0, "deposit").write(AcctX, 1);

  // Sessions 1 and 2 withdraw 1 unit from different accounts, each after
  // checking combined_balance >= 1 on its own snapshot.
  auto W1 = B.beginTxn(1, "withdrawX");
  W1.read("x", AcctX);
  W1.read("y", AcctY);
  W1.write(AcctX, W1.local("x") - 1, ge(W1.local("x") + W1.local("y"), 1));

  auto W2 = B.beginTxn(2, "withdrawY");
  W2.read("x", AcctX);
  W2.read("y", AcctY);
  W2.write(AcctY, W2.local("y") - 1, ge(W2.local("x") + W2.local("y"), 1));

  Program P = B.build();
  std::cout << "Program:\n" << P.str() << '\n';

  // Invariant: the two withdrawals may not both pass their balance check
  // (combined funds are 1).
  AssertionFn NoOverdraft = [](const FinalStates &S) {
    bool First = S.local(1, 0, "x") + S.local(1, 0, "y") >= 1;
    bool Second = S.local(2, 0, "x") + S.local(2, 0, "y") >= 1;
    return !(First && Second);
  };

  VarNameFn Names = P.varNameFn();
  for (IsolationLevel Level : {IsolationLevel::SnapshotIsolation,
                               IsolationLevel::Serializability}) {
    AssertionResult R = checkAssertion(
        P,
        ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                      Level),
        NoOverdraft);
    std::cout << "Under " << isolationLevelName(Level) << ": ";
    if (R.ViolationFound) {
      std::cout << "OVERDRAFT possible. Witness history:\n"
                << R.Witness.str(&Names);
    } else {
      std::cout << "safe (" << R.Checked << " histories checked)\n";
    }
    std::cout << '\n';
  }
  return 0;
}
