//===- examples/anomaly_matrix.cpp - Anomaly × isolation-level matrix -----===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints the classic anomaly classification matrix by *model checking*:
/// for each textbook anomaly we build the smallest program exhibiting it,
/// enumerate the program's behaviors under each isolation level, and
/// report whether the anomalous behavior is reachable. The resulting
/// table is the operational counterpart of the axiomatic hierarchy of
/// §2.2 (RC ⊋ RA ⊋ CC ⊋ SI ⊋ SER).
///
//===----------------------------------------------------------------------===//

#include "core/Enumerate.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace txdpor;

namespace {

struct Anomaly {
  std::string Name;
  Program Prog;
  AssertionFn Reached; ///< Returns FALSE when the anomaly occurred.
};

std::vector<Anomaly> makeAnomalies() {
  std::vector<Anomaly> Result;
  {
    // Non-repeatable read: one transaction reads x twice around a
    // concurrent overwrite.
    ProgramBuilder B;
    VarId X = B.var("x");
    auto T0 = B.beginTxn(0);
    T0.read("a1", X);
    T0.read("a2", X);
    B.beginTxn(1).write(X, 1);
    Result.push_back({"non-repeatable read", B.build(),
                      [](const FinalStates &S) {
                        return S.local(0, 0, "a1") == S.local(0, 0, "a2");
                      }});
  }
  {
    // Lost update: racing counter increments.
    ProgramBuilder B;
    VarId X = B.var("x");
    for (unsigned S = 0; S != 2; ++S) {
      auto T = B.beginTxn(S);
      T.read("a", X);
      T.write(X, T.local("a") + 1);
    }
    Result.push_back({"lost update", B.build(), [](const FinalStates &S) {
                        return S.local(0, 0, "a") != S.local(1, 0, "a");
                      }});
  }
  {
    // Fractured read: observing half of another transaction.
    ProgramBuilder B;
    VarId X = B.var("x");
    VarId Y = B.var("y");
    auto W = B.beginTxn(0);
    W.write(X, 1);
    W.write(Y, 1);
    auto R = B.beginTxn(1);
    R.read("x", X);
    R.read("y", Y);
    Result.push_back({"fractured read", B.build(),
                      [](const FinalStates &S) {
                        return S.local(1, 0, "x") == S.local(1, 0, "y");
                      }});
  }
  {
    // Causality violation: observing an effect without its cause.
    ProgramBuilder B;
    VarId X = B.var("x");
    VarId Y = B.var("y");
    B.beginTxn(0).write(X, 1);
    auto Fwd = B.beginTxn(1);
    Fwd.read("a", X);
    Fwd.write(Y, Fwd.local("a"));
    auto Obs = B.beginTxn(2);
    Obs.read("y", Y);
    Obs.read("x", X);
    Result.push_back({"causality violation", B.build(),
                      [](const FinalStates &S) {
                        // Seeing y = 1 (the effect) implies seeing x = 1.
                        return !(S.local(2, 0, "y") == 1 &&
                                 S.local(2, 0, "x") == 0);
                      }});
  }
  {
    // Long fork: two observers disagree on the order of two writes.
    ProgramBuilder B;
    VarId X = B.var("x");
    VarId Y = B.var("y");
    B.beginTxn(0).write(X, 1);
    B.beginTxn(1).write(Y, 1);
    auto O1 = B.beginTxn(2);
    O1.read("x", X);
    O1.read("y", Y);
    auto O2 = B.beginTxn(3);
    O2.read("x", X);
    O2.read("y", Y);
    Result.push_back({"long fork", B.build(), [](const FinalStates &S) {
                        bool O1XFirst = S.local(2, 0, "x") == 1 &&
                                        S.local(2, 0, "y") == 0;
                        bool O2YFirst = S.local(3, 0, "y") == 1 &&
                                        S.local(3, 0, "x") == 0;
                        return !(O1XFirst && O2YFirst);
                      }});
  }
  {
    // Write skew: disjoint guarded writes from a common snapshot.
    ProgramBuilder B;
    VarId X = B.var("x");
    VarId Y = B.var("y");
    auto T0 = B.beginTxn(0);
    T0.read("a", X);
    T0.write(Y, 1);
    auto T1 = B.beginTxn(1);
    T1.read("b", Y);
    T1.write(X, 1);
    Result.push_back({"write skew", B.build(), [](const FinalStates &S) {
                        return !(S.local(0, 0, "a") == 0 &&
                                 S.local(1, 0, "b") == 0);
                      }});
  }
  return Result;
}

} // namespace

int main() {
  std::cout << "Anomaly reachability by isolation level (model-checked):\n"
            << "  'yes' = some execution exhibits the anomaly\n\n";

  TablePrinter T({"anomaly", "RC", "RA", "CC", "SI", "SER"});
  for (Anomaly &A : makeAnomalies()) {
    std::vector<std::string> Row{A.Name};
    for (IsolationLevel Level :
         {IsolationLevel::ReadCommitted, IsolationLevel::ReadAtomic,
          IsolationLevel::CausalConsistency,
          IsolationLevel::SnapshotIsolation,
          IsolationLevel::Serializability}) {
      // Base CC works for filters ≥ CC; weaker levels run plain.
      ExplorerConfig Config;
      if (isPrefixClosedCausallyExtensible(Level)) {
        Config = ExplorerConfig::exploreCE(Level);
      } else {
        Config = ExplorerConfig::exploreCEStar(
            IsolationLevel::CausalConsistency, Level);
      }
      AssertionResult R = checkAssertion(A.Prog, Config, A.Reached);
      Row.push_back(R.ViolationFound ? "yes" : "no");
    }
    T.addRow(std::move(Row));
  }
  T.print(std::cout);
  std::cout << "\nEach 'yes' column prefix is longer than the next — the\n"
               "operational counterpart of RC ⊋ RA ⊋ CC ⊋ SI ⊋ SER.\n";
  return 0;
}
