//===- examples/sql_orders.cpp - SQL-level order processing ----------------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Model checking at the SQL level (§2.1/§7.2 compilation): an orders
/// table with a uniqueness rule enforced in application code — "INSERT
/// the order only if SELECT finds no row". Two clients race to file order
/// #0. Under weak isolation both SELECTs can miss the other's INSERT and
/// the 'unique' order is created twice, silently overwriting one
/// customer's data (the ACIDRain pattern). The checker exhibits the
/// duplicate under CC, explains the violation, and proves SER safe.
///
//===----------------------------------------------------------------------===//

#include "consistency/Explain.h"
#include "core/Enumerate.h"
#include "sql/Table.h"

#include <iostream>

using namespace txdpor;

int main() {
  ProgramBuilder B;
  Table Orders(B, "orders", /*MaxRows=*/2, {"customer", "amount"});

  // Two sessions file order #0 for different customers if it is free.
  for (unsigned Session = 0; Session != 2; ++Session) {
    auto T = B.beginTxn(Session, "fileOrder");
    Orders.selectById(T, /*RowId=*/0, "existing");
    T.assign("free", eq(T.local("existing_exists"), 0));
    // Guarded INSERT: read-modify-write of the presence set + row cells.
    T.read("set2", Orders.setVar(), T.local("free"));
    T.write(Orders.setVar(), bitOr(T.local("set2"), 1), T.local("free"));
    T.write(Orders.cellVar(0, 0), Value(Session) + 100, T.local("free"));
    T.write(Orders.cellVar(0, 1), Value(Session) + 1, T.local("free"));
    T.assign("filed", T.local("free"));
  }
  Program P = B.build();
  std::cout << "Program (SQL compiled to set + row variables):\n"
            << P.str() << '\n';

  AssertionFn UniqueOrder = [](const FinalStates &S) {
    return !(S.local(0, 0, "filed") == 1 && S.local(1, 0, "filed") == 1);
  };

  VarNameFn Names = P.varNameFn();
  const std::pair<const char *, ExplorerConfig> Algos[] = {
      {"CC", ExplorerConfig::exploreCE(IsolationLevel::CausalConsistency)},
      {"CC + SI",
       ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                     IsolationLevel::SnapshotIsolation)},
      {"CC + SER",
       ExplorerConfig::exploreCEStar(IsolationLevel::CausalConsistency,
                                     IsolationLevel::Serializability)},
  };
  for (const auto &[Name, Config] : Algos) {
    AssertionResult R = checkAssertion(P, Config, UniqueOrder);
    std::cout << "Under " << Name << ": ";
    if (!R.ViolationFound) {
      std::cout << "order uniqueness holds (" << R.Checked
                << " behaviors)\n\n";
      continue;
    }
    std::cout << "DUPLICATE ORDER FILED. Minimized witness:\n";
    History Core =
        minimizeViolation(R.Witness, IsolationLevel::Serializability);
    std::cout << Core.str(&Names);
    std::cout << explainViolation(Core, IsolationLevel::Serializability,
                                  &Names)
                     .Text
              << '\n';
  }
  return 0;
}
