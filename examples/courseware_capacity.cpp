//===- examples/courseware_capacity.cpp - Over-enrollment under CC --------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Courseware benchmark's capacity invariant (§7.2, after Nair et al.
/// 2020): a student may enroll only while the course is open and under
/// capacity. Two sessions race to enroll different students into a
/// capacity-1 course. Under Causal Consistency both capacity checks can
/// read the pre-enrollment counter, overfilling the course; under
/// Serializability the checker proves the invariant. We sweep all levels
/// to locate the weakest safe one.
///
//===----------------------------------------------------------------------===//

#include "apps/Courseware.h"
#include "core/Enumerate.h"

#include <iostream>

using namespace txdpor;

int main() {
  ProgramBuilder B;
  CoursewareApp App(B, /*NumStudents=*/2, /*NumCourses=*/1, /*Capacity=*/1);
  App.openCourse(0, 0);
  App.enroll(0, 0, 0); // Session 0: student 0 enrolls.
  App.enroll(1, 1, 0); // Session 1: student 1 enrolls concurrently.
  Program P = B.build();
  std::cout << "Program:\n" << P.str() << '\n';

  // Invariant: at most one of the two enrollments succeeds.
  AssertionFn CapacityRespected = [](const FinalStates &S) {
    return S.local(0, 1, "did") + S.local(1, 0, "did") <= 1;
  };

  VarNameFn Names = P.varNameFn();
  const std::pair<IsolationLevel, std::optional<IsolationLevel>> Algos[] = {
      {IsolationLevel::CausalConsistency, std::nullopt},
      {IsolationLevel::CausalConsistency, IsolationLevel::SnapshotIsolation},
      {IsolationLevel::CausalConsistency, IsolationLevel::Serializability},
  };
  for (auto [Base, Filter] : Algos) {
    ExplorerConfig Config;
    Config.BaseLevel = Base;
    Config.FilterLevel = Filter;
    AssertionResult R = checkAssertion(P, Config, CapacityRespected);
    std::cout << "Under " << Config.algorithmName() << ": ";
    if (R.ViolationFound) {
      std::cout << "OVER-ENROLLMENT possible. Witness:\n"
                << R.Witness.str(&Names);
    } else {
      std::cout << "capacity invariant holds (" << R.Checked
                << " histories checked)\n";
    }
    std::cout << '\n';
  }
  return 0;
}
