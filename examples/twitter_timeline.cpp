//===- examples/twitter_timeline.cpp - Timeline visibility per level ------===//
//
// Part of txdpor, a reproduction of "Dynamic Partial Order Reduction for
// Checking Correctness against Transaction Isolation Levels" (PLDI 2023).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Twitter benchmark (§7.2): user 0 follows user 1 and then reads the
/// timeline in a later transaction of the same session; user 1 tweets
/// concurrently. We enumerate all histories under each isolation level
/// and classify the timeline outcomes — showing how the level bounds the
/// set of observable states (the count shrinks as the level strengthens).
///
//===----------------------------------------------------------------------===//

#include "apps/Twitter.h"
#include "core/Enumerate.h"

#include <iostream>
#include <map>

using namespace txdpor;

int main() {
  ProgramBuilder B;
  TwitterApp App(B, /*NumUsers=*/2);
  App.follow(0, 0, 1);    // Session 0, txn 0: user 0 follows user 1.
  App.getTimeline(0, 0);  // Session 0, txn 1: user 0 reads its timeline.
  App.tweet(1, 1);        // Session 1: user 1 tweets.
  App.tweet(1, 1);        // ... twice.
  Program P = B.build();
  std::cout << "Program:\n" << P.str() << '\n';

  const std::pair<IsolationLevel, std::optional<IsolationLevel>> Algos[] = {
      {IsolationLevel::ReadCommitted, std::nullopt},
      {IsolationLevel::CausalConsistency, std::nullopt},
      {IsolationLevel::CausalConsistency, IsolationLevel::Serializability},
  };

  for (auto [Base, Filter] : Algos) {
    ExplorerConfig Config;
    Config.BaseLevel = Base;
    Config.FilterLevel = Filter;
    Explorer E(P, Config);

    // Classify timeline observations: (follows-set, tweets-of-user-1).
    std::map<std::pair<Value, Value>, unsigned> Outcomes;
    ExplorerStats Stats = E.run([&](const History &H) {
      FinalStates S = computeFinalStates(P, H);
      Value Follows = S.local(0, 1, "f");
      Value Tweets = S.local(0, 1, "t1");
      ++Outcomes[{Follows, Tweets}];
    });

    std::cout << "Under " << Config.algorithmName() << ": " << Stats.Outputs
              << " histories, timeline outcomes:\n";
    for (const auto &[Key, Count] : Outcomes)
      std::cout << "  follows=" << Key.first << " tweets_seen=" << Key.second
                << "  (" << Count << " histories)\n";
    std::cout << '\n';
  }

  std::cout << "Note: under CC the timeline read (session-after the follow)"
            << "\nalways sees the follow; weaker levels would not force"
            << " that.\n";
  return 0;
}
